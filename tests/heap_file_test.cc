#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace procsim::storage {
namespace {

std::vector<uint8_t> FixedRecord(uint8_t fill, std::size_t size = 100) {
  return std::vector<uint8_t>(size, fill);
}

TEST(HeapFileTest, InsertReadRoundTrip) {
  CostMeter meter;
  SimulatedDisk disk(4000, &meter);
  HeapFile heap(&disk);
  Result<RecordId> rid = heap.Insert(FixedRecord(7));
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(heap.Read(rid.ValueOrDie()).ValueOrDie(), FixedRecord(7));
  EXPECT_EQ(heap.record_count(), 1u);
}

TEST(HeapFileTest, SpillsToNewPagesAtCapacity) {
  CostMeter meter;
  SimulatedDisk disk(4000, &meter);
  HeapFile heap(&disk);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(heap.Insert(FixedRecord(static_cast<uint8_t>(i))).ok());
  }
  // 100 records x 100 bytes at 40/page -> 3 pages.
  EXPECT_EQ(heap.pages().size(), 3u);
  EXPECT_EQ(heap.record_count(), 100u);
}

TEST(HeapFileTest, UpdatePreservesRecordId) {
  CostMeter meter;
  SimulatedDisk disk(4000, &meter);
  HeapFile heap(&disk);
  RecordId rid = heap.Insert(FixedRecord(1)).ValueOrDie();
  ASSERT_TRUE(heap.Update(rid, FixedRecord(2)).ok());
  EXPECT_EQ(heap.Read(rid).ValueOrDie(), FixedRecord(2));
}

TEST(HeapFileTest, DeleteMakesRecordUnreachable) {
  CostMeter meter;
  SimulatedDisk disk(4000, &meter);
  HeapFile heap(&disk);
  RecordId rid = heap.Insert(FixedRecord(1)).ValueOrDie();
  ASSERT_TRUE(heap.Delete(rid).ok());
  EXPECT_EQ(heap.Read(rid).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(heap.record_count(), 0u);
}

TEST(HeapFileTest, ScanVisitsAllLiveRecordsOnce) {
  CostMeter meter;
  SimulatedDisk disk(4000, &meter);
  HeapFile heap(&disk);
  std::vector<RecordId> rids;
  for (int i = 0; i < 90; ++i) {
    rids.push_back(heap.Insert(FixedRecord(static_cast<uint8_t>(i))).ValueOrDie());
  }
  ASSERT_TRUE(heap.Delete(rids[10]).ok());
  ASSERT_TRUE(heap.Delete(rids[50]).ok());
  std::set<uint8_t> seen;
  ASSERT_TRUE(heap.Scan([&](RecordId, const std::vector<uint8_t>& bytes) {
    seen.insert(bytes[0]);
    return true;
  }).ok());
  EXPECT_EQ(seen.size(), 88u);
  EXPECT_FALSE(seen.contains(10));
  EXPECT_FALSE(seen.contains(50));
}

TEST(HeapFileTest, ScanChargesOneReadPerPage) {
  CostMeter meter;
  SimulatedDisk disk(4000, &meter);
  HeapFile heap(&disk);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(heap.Insert(FixedRecord(0)).ok());
  }
  meter.Reset();
  ASSERT_TRUE(
      heap.Scan([](RecordId, const std::vector<uint8_t>&) { return true; })
          .ok());
  EXPECT_EQ(meter.disk_reads(), 3u);  // 3 pages
  EXPECT_EQ(meter.disk_writes(), 0u);
}

TEST(HeapFileTest, ScanStopsEarlyWhenCallbackReturnsFalse) {
  CostMeter meter;
  SimulatedDisk disk(4000, &meter);
  HeapFile heap(&disk);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(heap.Insert(FixedRecord(static_cast<uint8_t>(i))).ok());
  }
  int visited = 0;
  ASSERT_TRUE(heap.Scan([&](RecordId, const std::vector<uint8_t>&) {
    return ++visited < 4;
  }).ok());
  EXPECT_EQ(visited, 4);
}

TEST(HeapFileTest, SlotReuseAfterDelete) {
  CostMeter meter;
  SimulatedDisk disk(4000, &meter);
  HeapFile heap(&disk);
  std::vector<RecordId> rids;
  for (int i = 0; i < 40; ++i) {
    rids.push_back(heap.Insert(FixedRecord(1)).ValueOrDie());
  }
  ASSERT_TRUE(heap.Delete(rids[5]).ok());
  // The next insert reuses the freed space on the first page rather than
  // allocating page 2.
  RecordId fresh = heap.Insert(FixedRecord(9)).ValueOrDie();
  EXPECT_EQ(fresh.page_id, rids[5].page_id);
  EXPECT_EQ(heap.pages().size(), 1u);
}

}  // namespace
}  // namespace procsim::storage
