#include "proc/hybrid.h"

#include <gtest/gtest.h>

#include <numeric>

#include "cost/advisor.h"
#include "sim/simulator.h"

namespace procsim::proc {
namespace {

cost::Params SmallParams() {
  cost::Params p;
  p.N = 2000;
  p.N1 = 10;
  p.N2 = 10;
  p.k = 20;
  p.q = 20;
  p.l = 5;
  p.f = 0.01;
  p.f2 = 0.2;
  return p;
}

TEST(AdvisorTest, HighUpdateRateRecommendsRecompute) {
  cost::Params p;
  p.SetUpdateProbability(0.95);
  const cost::Recommendation rec =
      cost::RecommendStrategy(p, cost::ProcModel::kModel1);
  EXPECT_EQ(rec.strategy, cost::Strategy::kAlwaysRecompute);
  EXPECT_FALSE(rec.rationale.empty());
  ASSERT_EQ(rec.ranking.size(), 4u);
  EXPECT_LE(rec.ranking[0].second, rec.ranking[1].second);
  EXPECT_LE(rec.ranking[2].second, rec.ranking[3].second);
}

TEST(AdvisorTest, LowUpdateRateRecommendsUpdateCache) {
  cost::Params p;
  p.SetUpdateProbability(0.05);
  p.f = 0.01;  // large objects
  const cost::Recommendation rec =
      cost::RecommendStrategy(p, cost::ProcModel::kModel1);
  EXPECT_TRUE(rec.strategy == cost::Strategy::kUpdateCacheAvm ||
              rec.strategy == cost::Strategy::kUpdateCacheRvm);
}

TEST(AdvisorTest, SafetyMarginPrefersCacheInvalidate) {
  // Small objects: CI is within a whisker of UC; the safety margin should
  // flip the recommendation (the paper's "CI is safer" guidance).
  cost::Params p;
  p.SetUpdateProbability(0.2);
  p.f = 0.0001;
  const cost::Recommendation strict =
      cost::RecommendStrategy(p, cost::ProcModel::kModel1, 1.0);
  const cost::Recommendation safe =
      cost::RecommendStrategy(p, cost::ProcModel::kModel1, 2.0);
  EXPECT_TRUE(strict.strategy == cost::Strategy::kUpdateCacheAvm ||
              strict.strategy == cost::Strategy::kUpdateCacheRvm);
  EXPECT_EQ(safe.strategy, cost::Strategy::kCacheInvalidate);
}

TEST(AdvisorTest, PerTypeRecommendationRestrictsPopulation) {
  cost::Params p;
  p.SetUpdateProbability(0.1);
  const cost::Recommendation p1_only = cost::RecommendForProcedureType(
      p, cost::ProcModel::kModel1, /*is_join_procedure=*/false);
  const cost::Recommendation p2_only = cost::RecommendForProcedureType(
      p, cost::ProcModel::kModel1, /*is_join_procedure=*/true);
  // Both should be Update Cache variants at P = 0.1, but evaluated on
  // different populations (no crash, sane costs).
  EXPECT_GT(p1_only.expected_cost_ms, 0.0);
  EXPECT_GT(p2_only.expected_cost_ms, 0.0);
}

TEST(AdvisorTest, DeploymentAdviceMentionsAllStages) {
  cost::Params p;
  const std::string advice =
      cost::DeploymentAdvice(p, cost::ProcModel::kModel1);
  EXPECT_NE(advice.find("Always Recompute"), std::string::npos);
  EXPECT_NE(advice.find("Cache and Invalidate"), std::string::npos);
  EXPECT_NE(advice.find("Update Cache"), std::string::npos);
}

TEST(HybridTest, RoutesAndAnswersCorrectly) {
  sim::Simulator::Options options;
  options.params = SmallParams();
  options.seed = 5;
  options.verify_results = true;
  Result<sim::SimulationResult> result = sim::Simulator::RunWithFactory(
      [&](sim::Database* db) {
        return std::make_unique<HybridStrategy>(
            db->catalog.get(), db->executor.get(), &db->meter,
            static_cast<std::size_t>(options.params.S), options.params,
            cost::ProcModel::kModel1);
      },
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().verification_failures, 0u);
}

TEST(HybridTest, AssignmentsCoverAllProcedures) {
  CostMeter meter;
  storage::SimulatedDisk disk(4000, &meter);
  rel::Catalog catalog(&disk);
  rel::Executor executor(&catalog, &meter);
  rel::Relation::Options options;
  options.tuple_width_bytes = 100;
  options.btree_column = 0;
  rel::Relation* r1 =
      catalog
          .CreateRelation("R1",
                          rel::Schema({{"key", rel::ValueType::kInt64}}),
                          options)
          .ValueOrDie();
  for (int64_t i = 0; i < 50; ++i) {
    (void)r1->Insert(rel::Tuple({rel::Value(i)}));
  }

  cost::Params params = SmallParams();
  params.SetUpdateProbability(0.1);
  HybridStrategy hybrid(&catalog, &executor, &meter, 100, params,
                        cost::ProcModel::kModel1);
  for (ProcId id = 0; id < 6; ++id) {
    DatabaseProcedure procedure;
    procedure.id = id;
    procedure.name = "P" + std::to_string(id);
    procedure.query.base = rel::BaseSelection{
        "R1", static_cast<int64_t>(id) * 5,
        static_cast<int64_t>(id) * 5 + 4, rel::Conjunction{}};
    ASSERT_TRUE(hybrid.AddProcedure(procedure).ok());
  }
  ASSERT_TRUE(hybrid.Prepare().ok());
  const std::vector<std::size_t> counts = hybrid.AssignmentCounts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}),
            6u);
  for (ProcId id = 0; id < 6; ++id) {
    EXPECT_EQ(hybrid.Access(id).ValueOrDie().size(), 5u);
    EXPECT_EQ(hybrid.AssignmentFor(id), hybrid.AssignmentFor(0));
  }
}

TEST(HybridTest, HighUpdateEnvironmentRoutesToRecompute) {
  CostMeter meter;
  storage::SimulatedDisk disk(4000, &meter);
  rel::Catalog catalog(&disk);
  rel::Executor executor(&catalog, &meter);
  rel::Relation::Options options;
  options.tuple_width_bytes = 100;
  options.btree_column = 0;
  rel::Relation* r1 =
      catalog
          .CreateRelation("R1",
                          rel::Schema({{"key", rel::ValueType::kInt64}}),
                          options)
          .ValueOrDie();
  (void)r1->Insert(rel::Tuple({rel::Value(int64_t{0})}));

  cost::Params params;
  params.SetUpdateProbability(0.95);
  HybridStrategy hybrid(&catalog, &executor, &meter, 100, params,
                        cost::ProcModel::kModel1);
  DatabaseProcedure procedure;
  procedure.id = 0;
  procedure.name = "P";
  procedure.query.base = rel::BaseSelection{"R1", 0, 0, rel::Conjunction{}};
  ASSERT_TRUE(hybrid.AddProcedure(procedure).ok());
  EXPECT_EQ(hybrid.AssignmentFor(0), cost::Strategy::kAlwaysRecompute);
}

}  // namespace
}  // namespace procsim::proc
