#include "proc/ilock.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace procsim::proc {
namespace {

using rel::Tuple;
using rel::Value;

Tuple Row(int64_t key) { return Tuple({Value(key)}); }

TEST(ILockTableTest, IntervalConflictDetection) {
  ILockTable locks;
  locks.AddIntervalLock(/*owner=*/1, "R1", /*column=*/0, 10, 19);
  EXPECT_EQ(locks.FindBroken("R1", Row(15)), std::vector<ProcId>{1});
  EXPECT_TRUE(locks.FindBroken("R1", Row(9)).empty());
  EXPECT_TRUE(locks.FindBroken("R1", Row(20)).empty());
  // Inclusive bounds.
  EXPECT_EQ(locks.FindBroken("R1", Row(10)).size(), 1u);
  EXPECT_EQ(locks.FindBroken("R1", Row(19)).size(), 1u);
}

TEST(ILockTableTest, ValueLockIsDegenerateInterval) {
  ILockTable locks;
  locks.AddValueLock(2, "R2", 0, 7);
  EXPECT_EQ(locks.FindBroken("R2", Row(7)), std::vector<ProcId>{2});
  EXPECT_TRUE(locks.FindBroken("R2", Row(8)).empty());
}

TEST(ILockTableTest, RelationsAreIndependent) {
  ILockTable locks;
  locks.AddIntervalLock(1, "R1", 0, 0, 100);
  EXPECT_TRUE(locks.FindBroken("R2", Row(50)).empty());
}

TEST(ILockTableTest, MultipleOwnersDeduplicated) {
  ILockTable locks;
  locks.AddIntervalLock(1, "R1", 0, 0, 50);
  locks.AddIntervalLock(1, "R1", 0, 40, 60);  // same owner, overlapping
  locks.AddIntervalLock(2, "R1", 0, 45, 55);
  std::vector<ProcId> broken = locks.FindBroken("R1", Row(45));
  std::sort(broken.begin(), broken.end());
  EXPECT_EQ(broken, (std::vector<ProcId>{1, 2}));
}

TEST(ILockTableTest, ClearLocksDropsOnlyOwner) {
  ILockTable locks;
  locks.AddIntervalLock(1, "R1", 0, 0, 100);
  locks.AddIntervalLock(2, "R1", 0, 0, 100);
  EXPECT_EQ(locks.lock_count(), 2u);
  locks.ClearLocks(1);
  EXPECT_EQ(locks.lock_count(), 1u);
  EXPECT_EQ(locks.FindBroken("R1", Row(10)), std::vector<ProcId>{2});
}

TEST(ILockTableTest, ConfigurableShardCount) {
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                             std::size_t{64}}) {
    ILockTable locks(shards);
    EXPECT_EQ(locks.shard_count(), shards);
    // Behavior is shard-count independent.
    locks.AddIntervalLock(1, "R1", 0, 0, 100);
    locks.AddValueLock(2, "R2", 0, 7);
    EXPECT_EQ(locks.FindBroken("R1", Row(50)), std::vector<ProcId>{1});
    EXPECT_EQ(locks.FindBroken("R2", Row(7)), std::vector<ProcId>{2});
    EXPECT_EQ(locks.lock_count(), 2u);
  }
}

TEST(ILockTableTest, ShardLockCountsSumToTotal) {
  ILockTable locks(4);
  const char* relations[] = {"R1", "R2", "R3", "R4", "R5"};
  std::size_t added = 0;
  for (const char* relation : relations) {
    for (int64_t lo = 0; lo < 3; ++lo) {
      locks.AddIntervalLock(1, relation, 0, lo, lo + 10);
      ++added;
    }
  }
  std::size_t total = 0;
  for (std::size_t shard = 0; shard < locks.shard_count(); ++shard) {
    total += locks.shard_lock_count(shard);
  }
  EXPECT_EQ(total, added);
  EXPECT_EQ(locks.lock_count(), added);
}

TEST(ILockTableDeathTest, ShardLockCountBoundsChecked) {
  ILockTable locks(4);
  EXPECT_DEATH(locks.shard_lock_count(4), "");
}

TEST(ILockTableTest, NonIntegerColumnsIgnored) {
  ILockTable locks;
  locks.AddIntervalLock(1, "R1", 0, 0, 100);
  // Tuple whose locked column holds a string cannot break an int interval.
  EXPECT_TRUE(locks.FindBroken("R1", Tuple({Value("abc")})).empty());
  // Column out of range is also safe.
  locks.AddIntervalLock(2, "R1", 5, 0, 100);
  EXPECT_EQ(locks.FindBroken("R1", Row(10)), std::vector<ProcId>{1});
}

}  // namespace
}  // namespace procsim::proc
