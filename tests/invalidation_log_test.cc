#include "proc/invalidation_log.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace procsim::proc {
namespace {

TEST(InvalidationLogTest, StartsAllValid) {
  InvalidationLog log(4);
  for (ProcId id = 0; id < 4; ++id) EXPECT_TRUE(log.IsValid(id));
  EXPECT_TRUE(log.records().empty());
}

TEST(InvalidationLogTest, TransitionsAreLogged) {
  InvalidationLog log(4);
  ASSERT_TRUE(log.MarkInvalid(2).ok());
  EXPECT_FALSE(log.IsValid(2));
  ASSERT_TRUE(log.MarkValid(2).ok());
  EXPECT_TRUE(log.IsValid(2));
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].kind, InvalidationLog::Record::Kind::kInvalidate);
  EXPECT_EQ(log.records()[1].kind, InvalidationLog::Record::Kind::kValidate);
  EXPECT_LT(log.records()[0].lsn, log.records()[1].lsn);
}

TEST(InvalidationLogTest, IdempotentTransitionsWriteNoRecords) {
  InvalidationLog log(2);
  ASSERT_TRUE(log.MarkValid(0).ok());    // already valid
  ASSERT_TRUE(log.MarkInvalid(1).ok());
  ASSERT_TRUE(log.MarkInvalid(1).ok());  // already invalid
  EXPECT_EQ(log.records().size(), 1u);
}

TEST(InvalidationLogTest, OutOfRangeIdsRejected) {
  InvalidationLog log(2);
  EXPECT_FALSE(log.MarkInvalid(5).ok());
  EXPECT_FALSE(log.MarkValid(5).ok());
}

TEST(InvalidationLogTest, RecoverFromCheckpointPlusSuffix) {
  InvalidationLog log(4);
  ASSERT_TRUE(log.MarkInvalid(0).ok());
  const InvalidationLog::Checkpoint checkpoint = log.TakeCheckpoint();
  ASSERT_TRUE(log.MarkInvalid(1).ok());
  ASSERT_TRUE(log.MarkValid(0).ok());

  log.Crash();
  Result<std::vector<bool>> recovered = log.Recover(checkpoint);
  ASSERT_TRUE(recovered.ok());
  ASSERT_TRUE(log.ResetFrom(recovered.TakeValueOrDie()).ok());
  EXPECT_TRUE(log.IsValid(0));   // re-validated after checkpoint
  EXPECT_FALSE(log.IsValid(1));  // invalidated after checkpoint
  EXPECT_TRUE(log.IsValid(2));
  EXPECT_TRUE(log.IsValid(3));
}

TEST(InvalidationLogTest, TruncationPreservesRecoverability) {
  InvalidationLog log(3);
  ASSERT_TRUE(log.MarkInvalid(0).ok());
  const InvalidationLog::Checkpoint checkpoint = log.TakeCheckpoint();
  log.TruncateThrough(checkpoint);
  EXPECT_TRUE(log.records().empty());
  ASSERT_TRUE(log.MarkInvalid(1).ok());
  log.Crash();
  Result<std::vector<bool>> recovered = log.Recover(checkpoint);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered.ValueOrDie()[0]);
  EXPECT_FALSE(recovered.ValueOrDie()[1]);
  EXPECT_TRUE(recovered.ValueOrDie()[2]);
}

TEST(InvalidationLogTest, OperationsAfterCrashFailUntilReset) {
  InvalidationLog log(2);
  const auto checkpoint = log.TakeCheckpoint();
  log.Crash();
  EXPECT_FALSE(log.MarkInvalid(0).ok());
  ASSERT_TRUE(log.ResetFrom(log.Recover(checkpoint).TakeValueOrDie()).ok());
  EXPECT_TRUE(log.MarkInvalid(0).ok());
}

TEST(InvalidationLogTest, RecoverAcrossTruncationHoleFailsLoudly) {
  // Regression: a checkpoint that predates the truncation point must be
  // rejected — replaying the surviving suffix against it would silently
  // resurrect stale validity for the truncated-away transitions.
  InvalidationLog log(3);
  const InvalidationLog::Checkpoint stale = log.TakeCheckpoint();  // LSN 0
  ASSERT_TRUE(log.MarkInvalid(0).ok());
  const InvalidationLog::Checkpoint fresh = log.TakeCheckpoint();
  log.TruncateThrough(fresh);
  EXPECT_EQ(log.truncated_through(), fresh.lsn);
  Result<std::vector<bool>> recovered = log.Recover(stale);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
  // The checkpoint at the truncation point itself is still usable.
  EXPECT_TRUE(log.Recover(fresh).ok());
}

TEST(InvalidationLogTest, FreshLsnZeroCheckpointRecoversUntruncatedLog) {
  // Regression: a checkpoint taken before any record (LSN 0) must recover
  // fine as long as nothing was truncated — the whole log is its suffix.
  InvalidationLog log(2);
  const InvalidationLog::Checkpoint genesis = log.TakeCheckpoint();
  EXPECT_EQ(genesis.lsn, 0u);
  ASSERT_TRUE(log.MarkInvalid(1).ok());
  Result<std::vector<bool>> recovered = log.Recover(genesis);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.ValueOrDie()[0]);
  EXPECT_FALSE(recovered.ValueOrDie()[1]);
}

TEST(InvalidationLogTest, ConsistencyHoldsOnEmptyPostTruncationLog) {
  // Regression: after truncating everything, the checker must anchor LSN
  // monotonicity at the truncation point, not at zero.
  InvalidationLog log(2);
  ASSERT_TRUE(log.MarkInvalid(0).ok());
  ASSERT_TRUE(log.MarkValid(0).ok());
  const InvalidationLog::Checkpoint checkpoint = log.TakeCheckpoint();
  log.TruncateThrough(checkpoint);
  EXPECT_TRUE(log.records().empty());
  EXPECT_TRUE(log.CheckConsistency().ok());
  ASSERT_TRUE(log.MarkInvalid(1).ok());
  EXPECT_TRUE(log.CheckConsistency().ok());
}

TEST(InvalidationLogTest, MirrorSeesEveryAppendedRecord) {
  InvalidationLog log(3);
  std::vector<InvalidationLog::Record> mirrored;
  log.SetMirror([&](const InvalidationLog::Record& record) {
    mirrored.push_back(record);
  });
  ASSERT_TRUE(log.MarkInvalid(1).ok());
  ASSERT_TRUE(log.MarkInvalid(1).ok());  // idempotent: no record, no mirror
  ASSERT_TRUE(log.MarkValid(1).ok());
  ASSERT_EQ(mirrored.size(), 2u);
  EXPECT_EQ(mirrored[0].kind, InvalidationLog::Record::Kind::kInvalidate);
  EXPECT_EQ(mirrored[0].procedure, 1u);
  EXPECT_EQ(mirrored[1].kind, InvalidationLog::Record::Kind::kValidate);
  EXPECT_EQ(mirrored[0].lsn, log.records()[0].lsn);
  log.SetMirror(nullptr);
  ASSERT_TRUE(log.MarkInvalid(2).ok());
  EXPECT_EQ(mirrored.size(), 2u);  // cleared hook sees nothing
}

// Property: random transition streams with random crash/checkpoint points
// always recover the pre-crash state.
class InvalidationLogPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(InvalidationLogPropertyTest, RecoveryMatchesLiveState) {
  Rng rng(GetParam());
  constexpr std::size_t kProcedures = 16;
  InvalidationLog log(kProcedures);
  InvalidationLog::Checkpoint checkpoint = log.TakeCheckpoint();
  std::vector<bool> shadow(kProcedures, true);
  for (int step = 0; step < 500; ++step) {
    const ProcId id = rng.Uniform(kProcedures);
    if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(log.MarkInvalid(id).ok());
      shadow[id] = false;
    } else {
      ASSERT_TRUE(log.MarkValid(id).ok());
      shadow[id] = true;
    }
    if (rng.Bernoulli(0.05)) {
      checkpoint = log.TakeCheckpoint();
      if (rng.Bernoulli(0.5)) log.TruncateThrough(checkpoint);
    }
    if (rng.Bernoulli(0.03)) {
      log.Crash();
      Result<std::vector<bool>> recovered = log.Recover(checkpoint);
      ASSERT_TRUE(recovered.ok());
      EXPECT_EQ(recovered.ValueOrDie(), shadow) << "step " << step;
      ASSERT_TRUE(log.ResetFrom(recovered.TakeValueOrDie()).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvalidationLogPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace procsim::proc
