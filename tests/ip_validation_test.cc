// Empirical validation of the paper's §4.2 locality analysis: the analytic
// probability IP that an access finds its cached value invalid — derived
// from the two-class locality model via X, Y, Z1, Z2 — is compared with
// the measured invalid-access fraction of a real CacheInvalidate run.
#include <gtest/gtest.h>

#include "proc/cache_invalidate.h"
#include "sim/simulator.h"

namespace procsim::sim {
namespace {

struct IpCase {
  double p;      // update probability
  double z;      // locality skew
};

class IpValidationTest : public ::testing::TestWithParam<IpCase> {};

TEST_P(IpValidationTest, MeasuredInvalidFractionTracksAnalyticIp) {
  cost::Params params;
  params.N = 8000;
  params.N1 = 30;
  params.N2 = 30;
  params.f = 0.004;   // ~32-tuple objects
  params.f2 = 0.25;
  params.l = 10;
  params.q = 600;     // enough accesses for a stable fraction
  params.Z = GetParam().z;
  params.SetUpdateProbability(GetParam().p);

  // Analytic prediction at these exact parameters.
  cost::AnalyticModel analytic(params, cost::ProcModel::kModel1);
  const double predicted_ip = analytic.InvalidProbability();

  // Measured: drive a real CacheInvalidate strategy; a probe subclass
  // copies the counters out at destruction (the strategy dies inside
  // RunWithFactory).
  Simulator::Options options;
  options.params = params;
  options.seed = 20260704;
  std::size_t accesses = 0;
  std::size_t invalid = 0;
  Result<SimulationResult> rerun = Simulator::RunWithFactory(
      [&](Database* db) {
        struct Probe : proc::CacheInvalidateStrategy {
          using CacheInvalidateStrategy::CacheInvalidateStrategy;
          std::size_t* accesses_out = nullptr;
          std::size_t* invalid_out = nullptr;
          ~Probe() override {
            if (accesses_out != nullptr) *accesses_out = access_count();
            if (invalid_out != nullptr) *invalid_out = invalid_access_count();
          }
        };
        auto strategy = std::make_unique<Probe>(
            db->catalog.get(), db->executor.get(), &db->meter,
            static_cast<std::size_t>(params.S), params.C_inval);
        strategy->accesses_out = &accesses;
        strategy->invalid_out = &invalid;
        return strategy;
      },
      options);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  ASSERT_GT(accesses, 0u);
  const double measured_ip =
      static_cast<double>(invalid) / static_cast<double>(accesses);

  // The analysis makes independence approximations, so expect agreement in
  // band, not equality: within 0.12 absolute or 35% relative.
  const double abs_err = std::abs(measured_ip - predicted_ip);
  EXPECT_TRUE(abs_err < 0.12 || abs_err < predicted_ip * 0.35)
      << "P=" << GetParam().p << " Z=" << GetParam().z
      << " predicted IP=" << predicted_ip << " measured=" << measured_ip;
}

INSTANTIATE_TEST_SUITE_P(
    Points, IpValidationTest,
    ::testing::Values(IpCase{0.1, 0.2}, IpCase{0.3, 0.2}, IpCase{0.6, 0.2},
                      IpCase{0.3, 0.05}, IpCase{0.3, 0.45}),
    [](const ::testing::TestParamInfo<IpCase>& info) {
      return "p" + std::to_string(static_cast<int>(info.param.p * 100)) +
             "_z" + std::to_string(static_cast<int>(info.param.z * 100));
    });

}  // namespace
}  // namespace procsim::sim
