// Library-level tests for tools/latch_lint: the static analyzer must parse
// the real LatchRank table, accept rank-legal fixtures, flag planted
// inversions — including ones on paths no runtime test ever executes — and
// enforce the justified-suppression contract.
#include "latch_lint/lint.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace procsim::lint {
namespace {

/// A minimal stand-in for src/concurrent/latch.h: the rank table plus the
/// declarations the scanner keys on.
constexpr char kLatchHeader[] = R"cc(
namespace procsim::concurrent {
enum class LatchRank : int {
  kSessionPool = 0,
  kDatabase = 10,
  kStrategySlot = 20,
  kRete = 30,
  kReteMemory = 35,
  kILock = 40,
  kInvalidationLog = 50,
  kPageTable = 55,
  kBufferCache = 60,
};
}  // namespace procsim::concurrent
)cc";

RankTable Ranks() { return ParseRankTable(kLatchHeader); }

LintResult Analyze(const std::vector<SourceFile>& files) {
  return AnalyzeSources(files, Ranks());
}

TEST(LatchLintTest, ParsesTheRankTable) {
  const RankTable ranks = Ranks();
  ASSERT_FALSE(ranks.empty());
  EXPECT_EQ(ranks.value_by_name.size(), 9u);
  EXPECT_EQ(ranks.value_by_name.at("kDatabase"), 10);
  EXPECT_EQ(ranks.value_by_name.at("kBufferCache"), 60);
  EXPECT_EQ(ranks.name_by_value.at(35), "kReteMemory");
}

TEST(LatchLintTest, ParsesTheRealRankTableShape) {
  // Ranks must strictly increase in declaration order for the hierarchy to
  // be a total order over the declared levels.
  const RankTable ranks = Ranks();
  int previous = -1;
  for (const auto& [value, name] : ranks.name_by_value) {
    EXPECT_GT(value, previous) << name;
    previous = value;
  }
}

TEST(LatchLintTest, UpwardNestingIsClean) {
  const SourceFile file{"src/fake/upward.cc", R"cc(
#include "concurrent/latch.h"
namespace procsim::fake {
class Upward {
 public:
  void Op();
 private:
  concurrent::RankedMutex db_{concurrent::LatchRank::kDatabase, "db"};
  concurrent::RankedMutex cache_{concurrent::LatchRank::kBufferCache, "c"};
};
void Upward::Op() {
  concurrent::RankedLockGuard db_guard(db_);
  concurrent::RankedLockGuard cache_guard(cache_);
}
}  // namespace procsim::fake
)cc"};
  const LintResult result = Analyze({file});
  EXPECT_TRUE(result.ok()) << RenderReport(result);
  EXPECT_EQ(result.mutexes_found, 2u);
  EXPECT_EQ(result.guard_sites_found, 2u);
  EXPECT_GE(result.edges_checked, 1u);
}

TEST(LatchLintTest, DirectInversionIsFlagged) {
  const SourceFile file{"src/fake/inverted.cc", R"cc(
namespace procsim::fake {
class Inverted {
 public:
  void Op();
 private:
  concurrent::RankedMutex log_{concurrent::LatchRank::kInvalidationLog, "l"};
  concurrent::RankedMutex cache_{concurrent::LatchRank::kBufferCache, "c"};
};
void Inverted::Op() {
  concurrent::RankedLockGuard cache_guard(cache_);
  concurrent::RankedLockGuard log_guard(log_);  // kInvalidationLog under kBufferCache
}
}  // namespace procsim::fake
)cc"};
  const LintResult result = Analyze({file});
  ASSERT_EQ(result.violations.size(), 1u) << RenderReport(result);
  const Violation& violation = result.violations[0];
  EXPECT_EQ(violation.from_rank, 60);
  EXPECT_EQ(violation.to_rank, 50);
  EXPECT_EQ(violation.to_file, "src/fake/inverted.cc");
  EXPECT_NE(violation.message.find("rank inversion"), std::string::npos);
  EXPECT_NE(violation.message.find("log_"), std::string::npos);
  EXPECT_NE(violation.message.find("cache_"), std::string::npos);
}

TEST(LatchLintTest, SameRankNestingIsFlagged) {
  const SourceFile file{"src/fake/stripes.cc", R"cc(
namespace procsim::fake {
void DoubleStripeHold() {
  LatchStripes stripes(LatchRank::kILock, "stripe", 4);
  concurrent::RankedLockGuard first(stripes.At(0));
  concurrent::RankedLockGuard second(stripes.At(1));
}
}  // namespace procsim::fake
)cc"};
  const LintResult result = Analyze({file});
  ASSERT_EQ(result.violations.size(), 1u) << RenderReport(result);
  EXPECT_NE(result.violations[0].message.find("same-rank re-entry"),
            std::string::npos);
}

TEST(LatchLintTest, GuardTypeAliasesAreRecognized) {
  // buffer_cache.cc-style `using Guard = concurrent::RankedLockGuard;`.
  const SourceFile file{"src/fake/aliased.cc", R"cc(
namespace procsim::fake {
using Guard = concurrent::RankedLockGuard;
class Aliased {
 public:
  void Op();
 private:
  concurrent::RankedMutex table_{concurrent::LatchRank::kPageTable, "t"};
  concurrent::RankedMutex slot_{concurrent::LatchRank::kStrategySlot, "s"};
};
void Aliased::Op() {
  Guard table_guard(table_);
  Guard slot_guard(slot_);  // kStrategySlot under kPageTable
}
}  // namespace procsim::fake
)cc"};
  const LintResult result = Analyze({file});
  ASSERT_EQ(result.violations.size(), 1u) << RenderReport(result);
  EXPECT_EQ(result.violations[0].to_rank, 20);
  EXPECT_EQ(result.violations[0].from_rank, 55);
}

TEST(LatchLintTest, CrossFunctionInversionOnNeverExecutedPathIsFlagged) {
  // The acquisition graph must cover paths no runtime test executes: the
  // inverted path below is reachable only from Maintenance(), a function
  // nothing calls — the runtime checker can never see it, the static graph
  // must.
  const SourceFile header{"src/fake/svc.h", R"cc(
namespace procsim::fake {
class Svc {
 public:
  void Maintenance();
  void Compact();
 private:
  concurrent::RankedMutex cache_{concurrent::LatchRank::kBufferCache, "c"};
  concurrent::RankedMutex ilock_{concurrent::LatchRank::kILock, "i"};
};
}  // namespace procsim::fake
)cc"};
  const SourceFile impl{"src/fake/svc.cc", R"cc(
namespace procsim::fake {
void Svc::Compact() {
  concurrent::RankedLockGuard ilock_guard(ilock_);
}
void Svc::Maintenance() {
  concurrent::RankedLockGuard cache_guard(cache_);
  this->Compact();  // transitively acquires kILock under kBufferCache
}
}  // namespace procsim::fake
)cc"};
  const LintResult result = Analyze({header, impl});
  ASSERT_EQ(result.violations.size(), 1u) << RenderReport(result);
  const Violation& violation = result.violations[0];
  EXPECT_EQ(violation.from_rank, 60);
  EXPECT_EQ(violation.to_rank, 40);
  ASSERT_FALSE(violation.call_chain.empty());
  EXPECT_NE(violation.call_chain.front().find("Compact"), std::string::npos);
}

TEST(LatchLintTest, RecursionDoesNotFeedAFunctionItsOwnAcquisitions) {
  // Engine::Access -> Strategy::Access dispatch: a callee sharing the
  // caller's name is skipped, otherwise every virtual-dispatch layer would
  // report a bogus self-edge.
  const SourceFile file{"src/fake/dispatch.cc", R"cc(
namespace procsim::fake {
class Layered {
 public:
  void Access();
 private:
  concurrent::RankedMutex db_{concurrent::LatchRank::kDatabase, "db"};
  Layered* inner_ = nullptr;
};
void Layered::Access() {
  concurrent::RankedLockGuard db_guard(db_);
  inner_->Access();
}
}  // namespace procsim::fake
)cc"};
  const LintResult result = Analyze({file});
  EXPECT_TRUE(result.ok()) << RenderReport(result);
}

TEST(LatchLintTest, JustifiedSuppressionSilencesTheEdge) {
  const SourceFile file{"src/fake/suppressed.cc", R"cc(
namespace procsim::fake {
class Suppressed {
 public:
  void Op();
 private:
  concurrent::RankedMutex log_{concurrent::LatchRank::kInvalidationLog, "l"};
  concurrent::RankedMutex cache_{concurrent::LatchRank::kBufferCache, "c"};
};
void Suppressed::Op() {
  concurrent::RankedLockGuard cache_guard(cache_);
  // latch-lint: allow(kBufferCache->kInvalidationLog) because this fixture
  // documents the suppression syntax; real code must state a real reason.
  concurrent::RankedLockGuard log_guard(log_);
}
}  // namespace procsim::fake
)cc"};
  const LintResult result = Analyze({file});
  EXPECT_TRUE(result.ok()) << RenderReport(result);
  EXPECT_EQ(result.suppressed_edges, 1u);
}

TEST(LatchLintTest, SuppressionWithoutJustificationIsRejected) {
  const SourceFile file{"src/fake/unjustified.cc", R"cc(
namespace procsim::fake {
class Unjustified {
 public:
  void Op();
 private:
  concurrent::RankedMutex log_{concurrent::LatchRank::kInvalidationLog, "l"};
  concurrent::RankedMutex cache_{concurrent::LatchRank::kBufferCache, "c"};
};
void Unjustified::Op() {
  concurrent::RankedLockGuard cache_guard(cache_);
  // latch-lint: allow(kBufferCache->kInvalidationLog)
  concurrent::RankedLockGuard log_guard(log_);
}
}  // namespace procsim::fake
)cc"};
  const LintResult result = Analyze({file});
  EXPECT_FALSE(result.ok());
  // The bare allow() is rejected AND does not suppress: both findings land.
  ASSERT_EQ(result.bad_suppressions.size(), 1u);
  EXPECT_NE(result.bad_suppressions[0].message.find("justification"),
            std::string::npos);
  EXPECT_EQ(result.violations.size(), 1u) << RenderReport(result);
}

TEST(LatchLintTest, SuppressionOfADifferentEdgeDoesNotApply) {
  const SourceFile file{"src/fake/mismatched.cc", R"cc(
namespace procsim::fake {
class Mismatched {
 public:
  void Op();
 private:
  concurrent::RankedMutex log_{concurrent::LatchRank::kInvalidationLog, "l"};
  concurrent::RankedMutex cache_{concurrent::LatchRank::kBufferCache, "c"};
};
void Mismatched::Op() {
  concurrent::RankedLockGuard cache_guard(cache_);
  // latch-lint: allow(kRete->kReteMemory) because this names another edge.
  concurrent::RankedLockGuard log_guard(log_);
}
}  // namespace procsim::fake
)cc"};
  const LintResult result = Analyze({file});
  EXPECT_EQ(result.violations.size(), 1u) << RenderReport(result);
  EXPECT_EQ(result.suppressed_edges, 0u);
}

TEST(LatchLintTest, SuppressionKeyToleratesInteriorWhitespace) {
  // `allow( kBufferCache -> kInvalidationLog )` must match the same edge as
  // the canonical spelling: keys are compared whitespace-normalized.
  const SourceFile file{"src/fake/spacing.cc", R"cc(
namespace procsim::fake {
class Spacing {
 public:
  void Op();
 private:
  concurrent::RankedMutex log_{concurrent::LatchRank::kInvalidationLog, "l"};
  concurrent::RankedMutex cache_{concurrent::LatchRank::kBufferCache, "c"};
};
void Spacing::Op() {
  concurrent::RankedLockGuard cache_guard(cache_);
  // latch-lint: allow( kBufferCache -> kInvalidationLog ) because fixture
  concurrent::RankedLockGuard log_guard(log_);
}
}  // namespace procsim::fake
)cc"};
  const LintResult result = Analyze({file});
  EXPECT_TRUE(result.ok()) << RenderReport(result);
  EXPECT_EQ(result.suppressed_edges, 1u);
}

TEST(LatchLintTest, SuppressionTagMatchesCaseInsensitively) {
  const SourceFile file{"src/fake/casing.cc", R"cc(
namespace procsim::fake {
class Casing {
 public:
  void Op();
 private:
  concurrent::RankedMutex log_{concurrent::LatchRank::kInvalidationLog, "l"};
  concurrent::RankedMutex cache_{concurrent::LatchRank::kBufferCache, "c"};
};
void Casing::Op() {
  concurrent::RankedLockGuard cache_guard(cache_);
  // Latch-Lint: Allow(kBufferCache->kInvalidationLog) Because fixture
  concurrent::RankedLockGuard log_guard(log_);
}
}  // namespace procsim::fake
)cc"};
  const LintResult result = Analyze({file});
  EXPECT_TRUE(result.ok()) << RenderReport(result);
  EXPECT_EQ(result.suppressed_edges, 1u);
}

TEST(LatchLintTest, UnmatchedSuppressionIsReportedAsUnused) {
  // A well-formed suppression naming an edge the code never takes is stale
  // noise: it must surface as an unused-suppression finding.
  const SourceFile file{"src/fake/stale.cc", R"cc(
namespace procsim::fake {
class Stale {
 public:
  void Op();
 private:
  concurrent::RankedMutex db_{concurrent::LatchRank::kDatabase, "db"};
  concurrent::RankedMutex cache_{concurrent::LatchRank::kBufferCache, "c"};
};
void Stale::Op() {
  concurrent::RankedLockGuard db_guard(db_);
  // latch-lint: allow(kBufferCache->kDatabase) because this edge is legal
  concurrent::RankedLockGuard cache_guard(cache_);
}
}  // namespace procsim::fake
)cc"};
  const LintResult result = Analyze({file});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.violations.empty()) << RenderReport(result);
  ASSERT_EQ(result.unused_suppressions.size(), 1u);
  EXPECT_NE(result.unused_suppressions[0].message.find("unused suppression"),
            std::string::npos);
}

TEST(LatchLintTest, ScopedGuardReleaseEndsTheEdge) {
  // The Rete memory pattern: the first guard's scope closes before the
  // second same-rank guard is taken, so there is no held edge.
  const SourceFile file{"src/fake/scoped.cc", R"cc(
namespace procsim::fake {
class Scoped {
 public:
  void Op();
 private:
  concurrent::RankedMutex a_{concurrent::LatchRank::kReteMemory, "a"};
  concurrent::RankedMutex b_{concurrent::LatchRank::kReteMemory, "b"};
};
void Scoped::Op() {
  {
    concurrent::RankedLockGuard a_guard(a_);
  }
  {
    concurrent::RankedLockGuard b_guard(b_);
  }
}
}  // namespace procsim::fake
)cc"};
  const LintResult result = Analyze({file});
  EXPECT_TRUE(result.ok()) << RenderReport(result);
}

TEST(LatchLintTest, StdGuardsOverRankedMutexesAreRecognized) {
  const SourceFile file{"src/fake/stdguards.cc", R"cc(
namespace procsim::fake {
class StdGuards {
 public:
  void Op();
 private:
  concurrent::RankedSharedMutex db_{concurrent::LatchRank::kDatabase, "db"};
  concurrent::RankedMutex pool_{concurrent::LatchRank::kSessionPool, "p"};
};
void StdGuards::Op() {
  std::shared_lock<concurrent::RankedSharedMutex> db_guard(db_);
  std::lock_guard<concurrent::RankedMutex> pool_guard(pool_);  // 0 under 10
}
}  // namespace procsim::fake
)cc"};
  const LintResult result = Analyze({file});
  ASSERT_EQ(result.violations.size(), 1u) << RenderReport(result);
  EXPECT_EQ(result.violations[0].to_rank, 0);
  EXPECT_EQ(result.violations[0].from_rank, 10);
}

}  // namespace
}  // namespace procsim::lint
