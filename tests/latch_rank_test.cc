// The LatchRank checker must admit every legal acquisition pattern the
// engine uses and catch planted inversions — the structural property that
// makes the latch hierarchy deadlock-free.
#include "concurrent/latch.h"

#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace procsim::concurrent {
namespace {

std::vector<std::string>& Violations() {
  static std::vector<std::string> violations;
  return violations;
}

void RecordViolation(const std::string& description) {
  Violations().push_back(description);
}

class LatchRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Violations().clear();
    previous_ = SetLatchViolationHandlerForTesting(&RecordViolation);
  }
  void TearDown() override {
    SetLatchViolationHandlerForTesting(previous_);
  }

  LatchViolationHandler previous_ = nullptr;
};

TEST_F(LatchRankTest, UpwardAcquisitionIsLegal) {
  RankedSharedMutex db(LatchRank::kDatabase, "db");
  RankedMutex slot(LatchRank::kStrategySlot, "slot");
  RankedMutex ilock(LatchRank::kILock, "ilock");
  RankedMutex cache(LatchRank::kBufferCache, "cache");
  {
    std::shared_lock<RankedSharedMutex> db_guard(db);
    std::lock_guard<RankedMutex> slot_guard(slot);
    std::lock_guard<RankedMutex> ilock_guard(ilock);
    std::lock_guard<RankedMutex> cache_guard(cache);
    EXPECT_EQ(internal::HeldCount(), 4u);
  }
  EXPECT_EQ(internal::HeldCount(), 0u);
  EXPECT_TRUE(Violations().empty());
}

TEST_F(LatchRankTest, ReleaseAndReacquireAtSameRankIsLegal) {
  // The Rete pattern: one memory's latch is dropped before the next
  // memory (same rank) is taken during token propagation.
  RankedMutex upstream(LatchRank::kReteMemory, "alpha");
  RankedMutex downstream(LatchRank::kReteMemory, "beta");
  {
    std::lock_guard<RankedMutex> guard(upstream);
  }
  {
    std::lock_guard<RankedMutex> guard(downstream);
  }
  EXPECT_TRUE(Violations().empty());
}

TEST_F(LatchRankTest, PlantedInversionIsDetected) {
  RankedMutex cache(LatchRank::kBufferCache, "cache");
  RankedMutex ilock(LatchRank::kILock, "ilock");
  {
    std::lock_guard<RankedMutex> cache_guard(cache);
    // kILock (40) under kBufferCache (60): a downward acquisition.
    std::lock_guard<RankedMutex> ilock_guard(ilock);
  }
  ASSERT_EQ(Violations().size(), 1u);
  EXPECT_NE(Violations()[0].find("ilock"), std::string::npos);
  EXPECT_NE(Violations()[0].find("cache"), std::string::npos);
}

TEST_F(LatchRankTest, SameRankNestingIsDetected) {
  // Two i-lock stripes held together would allow stripe-vs-stripe
  // deadlock; the checker treats same-rank nesting as an inversion.
  LatchStripes stripes(LatchRank::kILock, "stripe", 4);
  {
    std::lock_guard<RankedMutex> first(stripes.At(0));
    std::lock_guard<RankedMutex> second(stripes.At(1));
  }
  EXPECT_EQ(Violations().size(), 1u);
}

TEST_F(LatchRankTest, HeldStackIsPerThread) {
  RankedMutex cache(LatchRank::kBufferCache, "cache");
  std::lock_guard<RankedMutex> guard(cache);
  // Another thread's upward walk is unaffected by this thread's holds.
  std::thread other([] {
    RankedMutex db(LatchRank::kDatabase, "db");
    std::lock_guard<RankedMutex> db_guard(db);
    EXPECT_EQ(internal::HeldCount(), 1u);
  });
  other.join();
  EXPECT_TRUE(Violations().empty());
}

}  // namespace
}  // namespace procsim::concurrent
