// The LatchRank checker must admit every legal acquisition pattern the
// engine uses and catch planted inversions — the structural property that
// makes the latch hierarchy deadlock-free.
#include "util/latch.h"

#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace procsim::util {
namespace {

std::vector<std::string>& Violations() {
  static std::vector<std::string> violations;
  return violations;
}

void RecordViolation(const std::string& description) {
  Violations().push_back(description);
}

class LatchRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Violations().clear();
    previous_ = SetLatchViolationHandlerForTesting(&RecordViolation);
  }
  void TearDown() override {
    SetLatchViolationHandlerForTesting(previous_);
  }

  LatchViolationHandler previous_ = nullptr;
};

TEST_F(LatchRankTest, UpwardAcquisitionIsLegal) {
  RankedSharedMutex db(LatchRank::kDatabase, "db");
  RankedMutex slot(LatchRank::kStrategySlot, "slot");
  RankedMutex ilock(LatchRank::kILock, "ilock");
  RankedMutex cache(LatchRank::kBufferCache, "cache");
  {
    std::shared_lock<RankedSharedMutex> db_guard(db);
    std::lock_guard<RankedMutex> slot_guard(slot);
    std::lock_guard<RankedMutex> ilock_guard(ilock);
    std::lock_guard<RankedMutex> cache_guard(cache);
    EXPECT_EQ(internal::HeldCount(), 4u);
  }
  EXPECT_EQ(internal::HeldCount(), 0u);
  EXPECT_TRUE(Violations().empty());
}

TEST_F(LatchRankTest, ReleaseAndReacquireAtSameRankIsLegal) {
  // The Rete pattern: one memory's latch is dropped before the next
  // memory (same rank) is taken during token propagation.
  RankedMutex upstream(LatchRank::kReteMemory, "alpha");
  RankedMutex downstream(LatchRank::kReteMemory, "beta");
  {
    std::lock_guard<RankedMutex> guard(upstream);
  }
  {
    std::lock_guard<RankedMutex> guard(downstream);
  }
  EXPECT_TRUE(Violations().empty());
}

TEST_F(LatchRankTest, PlantedInversionIsDetected) {
  RankedMutex cache(LatchRank::kBufferCache, "cache");
  RankedMutex ilock(LatchRank::kILock, "ilock");
  {
    std::lock_guard<RankedMutex> cache_guard(cache);
    // kILock (40) under kBufferCache (60): a downward acquisition.
    std::lock_guard<RankedMutex> ilock_guard(ilock);
  }
  ASSERT_EQ(Violations().size(), 1u);
  EXPECT_NE(Violations()[0].find("ilock"), std::string::npos);
  EXPECT_NE(Violations()[0].find("cache"), std::string::npos);
}

TEST_F(LatchRankTest, SameRankNestingIsDetected) {
  // Two i-lock stripes held together would allow stripe-vs-stripe
  // deadlock; the checker treats same-rank nesting as an inversion.
  LatchStripes stripes(LatchRank::kILock, "stripe", 4);
  {
    std::lock_guard<RankedMutex> first(stripes.At(0));
    std::lock_guard<RankedMutex> second(stripes.At(1));
  }
  ASSERT_EQ(Violations().size(), 1u);
  // The report must call out the double-stripe hold distinctly from a
  // downward inversion — equal ranks are a striping bug, not a layering
  // bug, and the fix differs.
  EXPECT_NE(Violations()[0].find("same-rank re-entry"), std::string::npos);
}

TEST_F(LatchRankTest, AnnotatedGuardsParticipateInRankChecking) {
  // The SCOPED_CAPABILITY guards route through the same runtime checker as
  // bare lock()/unlock() calls.
  RankedSharedMutex db(LatchRank::kDatabase, "db");
  RankedMutex cache(LatchRank::kBufferCache, "cache");
  {
    RankedSharedLockGuard db_guard(db);
    RankedLockGuard cache_guard(cache);
    EXPECT_EQ(internal::HeldCount(), 2u);
  }
  EXPECT_EQ(internal::HeldCount(), 0u);
  {
    RankedLockGuard exclusive_db(db);  // writer path over the shared mutex
    EXPECT_EQ(internal::HeldCount(), 1u);
  }
  EXPECT_TRUE(Violations().empty());
}

TEST_F(LatchRankTest, FailedTryLockInversionIsReportedAsNearMiss) {
  // The checker hole this closes: a rank-inverting try_lock that happens to
  // FAIL acquires nothing, so NoteAcquire never runs — before the
  // CheckWouldAcquire preflight, the hazard shipped silent.
  const obs::Counter* near_miss =
      obs::GlobalMetrics().FindCounter("concurrent.latch.rank_near_miss");
  ASSERT_NE(near_miss, nullptr);
  const uint64_t before = near_miss->value();

  RankedMutex cache(LatchRank::kBufferCache, "cache");
  RankedMutex ilock(LatchRank::kILock, "ilock");

  // Another thread holds `ilock` so our rank-inverting try_lock fails.
  std::mutex sync;
  std::condition_variable cv;
  bool held = false;
  bool release = false;
  std::thread holder([&] {
    ilock.lock();
    {
      std::lock_guard<std::mutex> lock(sync);
      held = true;
      cv.notify_all();
    }
    std::unique_lock<std::mutex> lock(sync);
    cv.wait(lock, [&] { return release; });
    ilock.unlock();
  });
  {
    std::unique_lock<std::mutex> lock(sync);
    cv.wait(lock, [&] { return held; });
  }

  {
    std::lock_guard<RankedMutex> cache_guard(cache);
    EXPECT_FALSE(ilock.try_lock());  // fails AND is rank-inverting
  }
  {
    std::lock_guard<std::mutex> lock(sync);
    release = true;
    cv.notify_all();
  }
  holder.join();

  EXPECT_EQ(near_miss->value(), before + 1);
  ASSERT_EQ(Violations().size(), 1u);
  EXPECT_NE(Violations()[0].find("near miss"), std::string::npos);
  EXPECT_NE(Violations()[0].find("ilock"), std::string::npos);
}

TEST_F(LatchRankTest, SucceedingTryLockInversionReportsNearMissAndViolation) {
  const obs::Counter* near_miss =
      obs::GlobalMetrics().FindCounter("concurrent.latch.rank_near_miss");
  ASSERT_NE(near_miss, nullptr);
  const uint64_t before = near_miss->value();

  RankedMutex cache(LatchRank::kBufferCache, "cache");
  RankedMutex ilock(LatchRank::kILock, "ilock");
  {
    std::lock_guard<RankedMutex> cache_guard(cache);
    ASSERT_TRUE(ilock.try_lock());  // succeeds; still a rank inversion
    ilock.unlock();
  }
  EXPECT_EQ(near_miss->value(), before + 1);
  // Preflight near miss plus the NoteAcquire violation for the actual
  // acquisition.
  ASSERT_EQ(Violations().size(), 2u);
  EXPECT_NE(Violations()[0].find("near miss"), std::string::npos);
  EXPECT_EQ(Violations()[1].find("near miss"), std::string::npos);
}

TEST_F(LatchRankTest, TryLockSharedPreflightsTheRankOrder) {
  const obs::Counter* near_miss =
      obs::GlobalMetrics().FindCounter("concurrent.latch.rank_near_miss");
  ASSERT_NE(near_miss, nullptr);
  const uint64_t before = near_miss->value();

  RankedMutex cache(LatchRank::kBufferCache, "cache");
  RankedSharedMutex db(LatchRank::kDatabase, "db");
  {
    std::lock_guard<RankedMutex> cache_guard(cache);
    ASSERT_TRUE(db.try_lock_shared());
    db.unlock_shared();
  }
  EXPECT_EQ(near_miss->value(), before + 1);
}

TEST_F(LatchRankTest, StripeBoundsAreChecked) {
  LatchStripes stripes(LatchRank::kILock, "stripe", 4);
  EXPECT_EQ(stripes.size(), 4u);
  // For() hashes modulo the stripe count, so any hash is in range...
  EXPECT_NO_FATAL_FAILURE(stripes.For(12345));
  // ...but At() is a direct index and must reject out-of-range access
  // instead of reading past the stripe vector.
  EXPECT_DEATH(stripes.At(4), "out of range");
  EXPECT_DEATH(LatchStripes(LatchRank::kILock, "empty", 0),
               "at least one stripe");
}

TEST_F(LatchRankTest, HeldStackIsPerThread) {
  RankedMutex cache(LatchRank::kBufferCache, "cache");
  std::lock_guard<RankedMutex> guard(cache);
  // Another thread's upward walk is unaffected by this thread's holds.
  std::thread other([] {
    RankedMutex db(LatchRank::kDatabase, "db");
    std::lock_guard<RankedMutex> db_guard(db);
    EXPECT_EQ(internal::HeldCount(), 1u);
  });
  other.join();
  EXPECT_TRUE(Violations().empty());
}

}  // namespace
}  // namespace procsim::util
