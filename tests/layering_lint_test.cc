// Library-level tests for the procsim_lint layering pass: the declared DAG
// in layers.txt must parse (and be rejected when it is not a DAG), legal
// include edges must stay silent, planted downward includes and dependency
// cycles must be flagged with the include chain, and the justified-
// suppression contract must hold.
#include "procsim_lint/layering.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace procsim::lint {
namespace {

/// A three-layer stand-in for layers.txt: util < obs < storage.
constexpr char kLayers[] = R"(
# fixture DAG, bottom first
util:
obs: util
storage: util obs
)";

LayerGraph Graph() {
  std::vector<Finding> findings;
  LayerGraph graph = ParseLayerGraph(kLayers, "layers.txt", &findings);
  EXPECT_TRUE(findings.empty());
  return graph;
}

TEST(LayeringLintTest, ParsesTheDeclaredDag) {
  const LayerGraph graph = Graph();
  ASSERT_EQ(graph.order.size(), 3u);
  EXPECT_EQ(graph.order[0], "util");
  EXPECT_TRUE(graph.declared("storage"));
  EXPECT_FALSE(graph.declared("rete"));
  EXPECT_EQ(graph.allowed.at("storage").count("obs"), 1u);
  EXPECT_TRUE(graph.allowed.at("util").empty());
}

TEST(LayeringLintTest, MalformedLineIsAFinding) {
  std::vector<Finding> findings;
  ParseLayerGraph("util\nobs: util\n", "layers.txt", &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("malformed"), std::string::npos);
}

TEST(LayeringLintTest, DeclaredCycleIsAFinding) {
  std::vector<Finding> findings;
  ParseLayerGraph("a: b\nb: c\nc: a\n", "layers.txt", &findings);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].message.find("DAG"), std::string::npos);
}

TEST(LayeringLintTest, UpwardIncludesAreClean) {
  const std::vector<SourceFile> files{
      {"src/storage/disk.cc", R"cc(
#include "storage/disk.h"

#include <vector>

#include "obs/metrics.h"
#include "util/status.h"
)cc"},
      {"src/obs/metrics.cc", "#include \"util/logging.h\"\n"},
  };
  const LayeringResult result = AnalyzeLayering(files, Graph());
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.files_scanned, 2u);
  EXPECT_EQ(result.edges_checked, 3u);
}

TEST(LayeringLintTest, DownwardIncludeIsFlagged) {
  const std::vector<SourceFile> files{
      {"src/util/logging.cc", "#include \"obs/metrics.h\"\n"},
  };
  const LayeringResult result = AnalyzeLayering(files, Graph());
  ASSERT_EQ(result.findings.size(), 1u);
  const Finding& finding = result.findings[0];
  EXPECT_EQ(finding.pass, "layering");
  EXPECT_EQ(finding.key, "layering(util->obs)");
  EXPECT_NE(finding.message.find("may not include"), std::string::npos);
  EXPECT_NE(finding.message.find("obs/metrics.h"), std::string::npos);
}

TEST(LayeringLintTest, CycleIsReportedWithTheIncludeChain) {
  // obs -> util is allowed, but a planted util -> obs include closes a
  // cycle; the report must carry both edges' sites.
  const std::vector<SourceFile> files{
      {"src/obs/metrics.cc", "#include \"util/logging.h\"\n"},
      {"src/util/logging.cc", "#include \"obs/metrics.h\"\n"},
  };
  const LayeringResult result = AnalyzeLayering(files, Graph());
  ASSERT_FALSE(result.findings.empty());
  bool saw_cycle = false;
  for (const Finding& finding : result.findings) {
    if (finding.message.find("dependency cycle") == std::string::npos) {
      continue;
    }
    saw_cycle = true;
    EXPECT_NE(finding.message.find("obs -> util -> obs"), std::string::npos)
        << finding.message;
    EXPECT_NE(finding.message.find("src/util/logging.cc"),
              std::string::npos);
  }
  EXPECT_TRUE(saw_cycle);
}

TEST(LayeringLintTest, CommentedOutIncludeDoesNotCount) {
  const std::vector<SourceFile> files{
      {"src/util/logging.cc", "// #include \"obs/metrics.h\"\n"},
  };
  const LayeringResult result = AnalyzeLayering(files, Graph());
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.edges_checked, 0u);
}

TEST(LayeringLintTest, JustifiedSuppressionSilencesTheEdge) {
  const std::vector<SourceFile> files{
      {"src/util/logging.cc",
       "// procsim-lint: allow(layering(util->obs)) because fixture\n"
       "#include \"obs/metrics.h\"\n"},
  };
  const LayeringResult result = AnalyzeLayering(files, Graph());
  EXPECT_TRUE(result.ok()) << result.findings.size();
  EXPECT_EQ(result.suppressed, 1u);
}

TEST(LayeringLintTest, UnmatchedSuppressionIsReportedAsUnused) {
  const std::vector<SourceFile> files{
      {"src/obs/metrics.cc",
       "// procsim-lint: allow(layering(obs->util)) because stale\n"
       "#include \"util/logging.h\"\n"},
  };
  const LayeringResult result = AnalyzeLayering(files, Graph());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("unused suppression"),
            std::string::npos);
}

}  // namespace
}  // namespace procsim::lint
