// Library-level tests for the procsim_lint metrics-consistency pass: the
// catalog in obs/metrics.cc is the source of truth — referenced-but-
// uncataloged names (typos), cataloged-but-unreferenced names (dead
// metrics), and convention violations must all be flagged, and the
// justified-suppression contract must hold.
#include "procsim_lint/metrics_pass.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace procsim::lint {
namespace {

/// A stand-in for src/obs/metrics.cc with a two-name catalog.
SourceFile CatalogFile(const std::string& names) {
  return {"src/obs/metrics.cc",
          "// procsim-lint: metric-catalog-begin\n" + names +
              "// procsim-lint: metric-catalog-end\n"};
}

TEST(MetricsLintTest, ConsistentNamesAreClean) {
  const std::vector<SourceFile> files{
      CatalogFile("\"storage.disk.reads\",\n\"storage.disk.writes\",\n"),
      {"src/storage/disk.cc", R"cc(
void F() {
  GlobalMetrics().RegisterCounter("storage.disk.reads");
  GlobalMetrics().RegisterCounter(
      "storage.disk.writes");
}
)cc"},
  };
  const MetricsResult result = AnalyzeMetrics(files);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.catalog_names, 2u);
  EXPECT_EQ(result.referenced_names, 2u);
}

TEST(MetricsLintTest, MissingCatalogIsAFinding) {
  const std::vector<SourceFile> files{
      {"src/storage/disk.cc",
       "void F() { RegisterCounter(\"storage.disk.reads\"); }\n"},
  };
  const MetricsResult result = AnalyzeMetrics(files);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("no metric catalog"),
            std::string::npos);
}

TEST(MetricsLintTest, TypoedReferenceIsFlagged) {
  const std::vector<SourceFile> files{
      CatalogFile("\"storage.disk.reads\",\n"),
      {"src/storage/disk.cc", R"cc(
void F() {
  GlobalMetrics().RegisterCounter("storage.disk.reads");
  GlobalMetrics().FindCounter("storage.disk.raeds");
}
)cc"},
  };
  const MetricsResult result = AnalyzeMetrics(files);
  ASSERT_EQ(result.findings.size(), 1u);
  const Finding& finding = result.findings[0];
  EXPECT_EQ(finding.key, "metric(storage.disk.raeds)");
  EXPECT_NE(finding.message.find("not in the catalog"), std::string::npos);
  EXPECT_EQ(finding.file, "src/storage/disk.cc");
  EXPECT_EQ(finding.line, 4);
}

TEST(MetricsLintTest, DeadCatalogEntryIsFlagged) {
  const std::vector<SourceFile> files{
      CatalogFile("\"storage.disk.reads\",\n\"storage.disk.writes\",\n"),
      {"src/storage/disk.cc",
       "void F() { RegisterCounter(\"storage.disk.reads\"); }\n"},
  };
  const MetricsResult result = AnalyzeMetrics(files);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].key, "metric(storage.disk.writes)");
  EXPECT_NE(result.findings[0].message.find("dead metric"),
            std::string::npos);
}

TEST(MetricsLintTest, ConventionViolationIsFlagged) {
  // Two segments instead of three, and an uppercase segment.
  const std::vector<SourceFile> files{
      CatalogFile("\"storage.reads\",\n"),
      {"src/storage/disk.cc",
       "void F() { RegisterCounter(\"storage.reads\"); }\n"},
  };
  const MetricsResult result = AnalyzeMetrics(files);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("<area>.<noun>.<verb>"),
            std::string::npos);
}

TEST(MetricsLintTest, JustifiedSuppressionSilencesTheFinding) {
  const std::vector<SourceFile> files{
      CatalogFile("\"storage.disk.reads\",\n"),
      {"src/storage/disk.cc", R"cc(
void F() {
  RegisterCounter("storage.disk.reads");
  // procsim-lint: allow(metric(bench.scratch.count)) because fixture
  RegisterCounter("bench.scratch.count");
}
)cc"},
  };
  const MetricsResult result = AnalyzeMetrics(files);
  EXPECT_TRUE(result.ok()) << result.findings.size();
  EXPECT_EQ(result.suppressed, 1u);
}

TEST(MetricsLintTest, UnmatchedSuppressionIsReportedAsUnused) {
  const std::vector<SourceFile> files{
      CatalogFile("\"storage.disk.reads\",\n"),
      {"src/storage/disk.cc", R"cc(
void F() {
  // procsim-lint: allow(metric(storage.disk.reads)) because stale
  RegisterCounter("storage.disk.reads");
}
)cc"},
  };
  const MetricsResult result = AnalyzeMetrics(files);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_NE(result.findings[0].message.find("unused suppression"),
            std::string::npos);
}

}  // namespace
}  // namespace procsim::lint
