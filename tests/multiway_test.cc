// The paper analyzes 2-way and 3-way joins; the implementation generalizes
// to arbitrary right-deep join chains.  These tests pin the 4-way case for
// both the executor and the Rete network, and the error paths of the
// right-deep builder.
#include <gtest/gtest.h>

#include <algorithm>

#include "relational/catalog.h"
#include "relational/executor.h"
#include "rete/network.h"
#include "util/rng.h"

namespace procsim {
namespace {

using rel::Conjunction;
using rel::JoinStage;
using rel::ProcedureQuery;
using rel::Tuple;
using rel::Value;

std::vector<std::string> Canon(const std::vector<Tuple>& tuples) {
  std::vector<std::string> out;
  for (const Tuple& t : tuples) out.push_back(t.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

class MultiwayTest : public ::testing::Test {
 protected:
  MultiwayTest()
      : disk_(4000, &meter_), catalog_(&disk_), executor_(&catalog_, &meter_) {
    // A -> B -> C -> D chain: each relation's second column keys into the
    // next relation's hashed first column.
    auto make = [&](const std::string& name, bool btree,
                    std::size_t columns) {
      rel::Relation::Options options;
      options.tuple_width_bytes = 100;
      if (btree) {
        options.btree_column = 0;
      } else {
        options.hash_column = 0;
      }
      std::vector<rel::Column> schema;
      for (std::size_t c = 0; c < columns; ++c) {
        schema.push_back(rel::Column{name + "_c" + std::to_string(c),
                                     rel::ValueType::kInt64});
      }
      return catalog_.CreateRelation(name, rel::Schema(schema), options)
          .ValueOrDie();
    };
    a_ = make("A", /*btree=*/true, 2);
    b_ = make("B", false, 2);
    c_ = make("C", false, 2);
    d_ = make("D", false, 2);
    Rng rng(12);
    for (int64_t i = 0; i < 40; ++i) {
      a_rids_.push_back(
          a_->Insert(Tuple({Value(i),
                            Value(static_cast<int64_t>(rng.Uniform(8)))}))
              .ValueOrDie());
    }
    for (int64_t i = 0; i < 8; ++i) {
      (void)b_->Insert(Tuple({Value(i), Value(i % 4)}));
    }
    for (int64_t i = 0; i < 4; ++i) {
      (void)c_->Insert(Tuple({Value(i), Value(i % 2)}));
    }
    for (int64_t i = 0; i < 2; ++i) {
      (void)d_->Insert(Tuple({Value(i), Value(i * 111)}));
    }
  }

  ProcedureQuery FourWay(int64_t lo, int64_t hi) {
    ProcedureQuery query;
    query.base = rel::BaseSelection{"A", lo, hi, Conjunction{}};
    // A.c1 -> B; B.c1 (position 3 in A++B) -> C; C.c1 (position 5) -> D.
    query.joins.push_back(JoinStage{"B", 1, Conjunction{}});
    query.joins.push_back(JoinStage{"C", 3, Conjunction{}});
    query.joins.push_back(JoinStage{"D", 5, Conjunction{}});
    return query;
  }

  CostMeter meter_;
  storage::SimulatedDisk disk_;
  rel::Catalog catalog_;
  rel::Executor executor_;
  rel::Relation* a_ = nullptr;
  rel::Relation* b_ = nullptr;
  rel::Relation* c_ = nullptr;
  rel::Relation* d_ = nullptr;
  std::vector<storage::RecordId> a_rids_;
};

TEST_F(MultiwayTest, ExecutorRunsFourWayChain) {
  auto result = executor_.Execute(FourWay(0, 39));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.ValueOrDie().size(), 40u);  // every A row joins through
  for (const Tuple& row : result.ValueOrDie()) {
    ASSERT_EQ(row.arity(), 8u);
    EXPECT_EQ(row.value(1).AsInt64(), row.value(2).AsInt64());
    EXPECT_EQ(row.value(3).AsInt64(), row.value(4).AsInt64());
    EXPECT_EQ(row.value(5).AsInt64(), row.value(6).AsInt64());
  }
}

TEST_F(MultiwayTest, ReteBuildsRightDeepFourWayAndMaintainsIt) {
  rete::ReteNetwork network(&catalog_, &meter_, 100);
  auto memory = network.AddProcedure(FourWay(10, 29));
  ASSERT_TRUE(memory.ok()) << memory.status().ToString();
  // 4 selections, 3 and-nodes, 3 β-memories (D⋈ nothing is α; C⋈D, B⋈(C⋈D),
  // result).
  EXPECT_EQ(network.stats().tconst_nodes, 4u);
  EXPECT_EQ(network.stats().and_nodes, 3u);
  EXPECT_EQ(network.stats().beta_memories, 3u);
  EXPECT_EQ(Canon(memory.ValueOrDie()->store().SnapshotForTesting()),
            Canon(executor_.Execute(FourWay(10, 29)).ValueOrDie()));

  // Maintain under updates.
  Rng rng(3);
  for (int step = 0; step < 60; ++step) {
    const std::size_t pick = rng.Uniform(a_rids_.size());
    const Tuple old_tuple = a_->Read(a_rids_[pick]).ValueOrDie();
    const Tuple new_tuple({Value(static_cast<int64_t>(rng.Uniform(40))),
                           Value(static_cast<int64_t>(rng.Uniform(8)))});
    ASSERT_TRUE(a_->UpdateInPlace(a_rids_[pick], new_tuple).ok());
    ASSERT_TRUE(network.OnDelete("A", old_tuple).ok());
    ASSERT_TRUE(network.OnInsert("A", new_tuple).ok());
    if (step % 20 == 19) {
      ASSERT_EQ(Canon(memory.ValueOrDie()->store().SnapshotForTesting()),
                Canon(executor_.Execute(FourWay(10, 29)).ValueOrDie()))
          << "diverged at step " << step;
    }
  }
}

TEST_F(MultiwayTest, RightDeepViolationIsRejected) {
  // Stage 2 probes a column of A (position 0) instead of the immediately
  // preceding relation B — legal for the executor (left-deep pipeline) but
  // not expressible right-deep, so the Rete builder must refuse.
  ProcedureQuery bad;
  bad.base = rel::BaseSelection{"A", 0, 39, Conjunction{}};
  bad.joins.push_back(JoinStage{"B", 1, Conjunction{}});
  bad.joins.push_back(JoinStage{"C", 0, Conjunction{}});
  rete::ReteNetwork network(&catalog_, &meter_, 100);
  Result<rete::MemoryNode*> memory = network.AddProcedure(bad);
  EXPECT_FALSE(memory.ok());
  EXPECT_EQ(memory.status().code(), StatusCode::kInvalidArgument);
  // The executor happily runs the same plan left-deep.
  EXPECT_TRUE(executor_.Execute(bad).ok());
}

TEST_F(MultiwayTest, FirstStageMustProbeBaseColumn) {
  ProcedureQuery bad;
  bad.base = rel::BaseSelection{"A", 0, 39, Conjunction{}};
  bad.joins.push_back(JoinStage{"B", 5, Conjunction{}});  // out of A's range
  rete::ReteNetwork network(&catalog_, &meter_, 100);
  EXPECT_FALSE(network.AddProcedure(bad).ok());
}

TEST_F(MultiwayTest, SharedTailAcrossFourWayProcedures) {
  rete::ReteNetwork network(&catalog_, &meter_, 100);
  ASSERT_TRUE(network.AddProcedure(FourWay(0, 9)).ok());
  const auto before = network.stats();
  ASSERT_TRUE(network.AddProcedure(FourWay(20, 29)).ok());
  // The whole B⋈C⋈D tail is shared: only one new t-const (the base
  // selection), one new and-node and one new result β-memory.
  EXPECT_EQ(network.stats().tconst_nodes, before.tconst_nodes + 1);
  EXPECT_EQ(network.stats().and_nodes, before.and_nodes + 1);
  EXPECT_EQ(network.stats().beta_memories, before.beta_memories + 1);
}

}  // namespace
}  // namespace procsim
