// NEGATIVE-COMPILE FIXTURE — this file must NOT compile under
// `-Wthread-safety -Werror=thread-safety` (Clang).  tests/CMakeLists.txt
// try_compile()s it with those flags and fails the configure if it
// *succeeds*: that would mean the thread-safety gate stopped rejecting
// unguarded access to GUARDED_BY state, i.e. the whole annotation layer
// had silently gone inert.
//
// It is never added to any build target; only the expected-to-fail
// try_compile sees it.
#include "util/latch.h"
#include "util/thread_annotations.h"

namespace procsim {

class Unguarded {
 public:
  // BUG (deliberate): writes a guarded field without acquiring the
  // capability.  Clang: error: writing variable 'value_' requires holding
  // mutex 'latch_' exclusively [-Werror,-Wthread-safety-analysis]
  void Increment() { ++value_; }

 private:
  mutable util::RankedMutex latch_{
      util::LatchRank::kBufferCache, "Unguarded"};
  int value_ GUARDED_BY(latch_) = 0;
};

}  // namespace procsim

int main() {
  procsim::Unguarded unguarded;
  unguarded.Increment();
  return 0;
}
