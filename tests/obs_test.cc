// Observability-layer tests: counter semantics, histogram bucketing,
// registry snapshot/reset round-trips, trace-span recording, and —
// decisive under the tsan preset (matched by the ci.sh 'Obs' regex) —
// many-thread hammering of the lock-free read paths.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "sim/simulator.h"

namespace procsim::obs {
namespace {

TEST(ObsCounterTest, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("test.counter.basic");
  EXPECT_EQ(counter->value(), 0u);
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->value(), 42u);
  counter->Reset();
  EXPECT_EQ(counter->value(), 0u);
}

TEST(ObsCounterTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter* first = registry.RegisterCounter("test.counter.same");
  Counter* second = registry.RegisterCounter("test.counter.same");
  EXPECT_EQ(first, second);
  first->Add(7);
  EXPECT_EQ(second->value(), 7u);
}

TEST(ObsCounterTest, FindCounterSeesRegistrationsOnly) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("test.counter.missing"), nullptr);
  Counter* counter = registry.RegisterCounter("test.counter.present");
  counter->Add(3);
  const Counter* found = registry.FindCounter("test.counter.present");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value(), 3u);
}

TEST(ObsHistogramTest, BucketBoundariesAreInclusive) {
  // bucket i counts value <= bounds[i]; one overflow bucket at the end.
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0
  histogram.Observe(1.0);    // bucket 0 (inclusive upper bound)
  histogram.Observe(1.0001); // bucket 1
  histogram.Observe(10.0);   // bucket 1
  histogram.Observe(100.0);  // bucket 2
  histogram.Observe(100.5);  // overflow
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 100.5);
}

TEST(ObsHistogramTest, DefaultCostBucketsAreStrictlyIncreasing) {
  const std::vector<double> bounds = DefaultCostBuckets();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(ObsHistogramTest, ResetClearsCountsButKeepsBounds) {
  Histogram histogram({5.0, 50.0});
  histogram.Observe(3);
  histogram.Observe(300);
  histogram.Reset();
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  ASSERT_EQ(snap.bounds.size(), 2u);
  for (uint64_t c : snap.counts) EXPECT_EQ(c, 0u);
}

TEST(ObsRegistryTest, SnapshotResetRoundTrip) {
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("test.roundtrip.counter");
  Histogram* histogram =
      registry.RegisterHistogram("test.roundtrip.histogram", {1.0, 2.0});
  counter->Add(5);
  histogram->Observe(1.5);

  MetricsSnapshot before = registry.TakeSnapshot();
  EXPECT_EQ(before.counters.at("test.roundtrip.counter"), 5u);
  EXPECT_EQ(before.histograms.at("test.roundtrip.histogram").count, 1u);

  registry.ResetAll();
  MetricsSnapshot after = registry.TakeSnapshot();
  // Registrations survive a reset; values return to zero.
  EXPECT_EQ(after.counters.at("test.roundtrip.counter"), 0u);
  EXPECT_EQ(after.histograms.at("test.roundtrip.histogram").count, 0u);
  // And the same pointers keep working.
  counter->Add(2);
  EXPECT_EQ(registry.TakeSnapshot().counters.at("test.roundtrip.counter"),
            2u);
}

TEST(ObsRegistryTest, WriteJsonContainsEveryMetric) {
  MetricsRegistry registry;
  registry.RegisterCounter("test.json.counter")->Add(9);
  registry.RegisterHistogram("test.json.histogram", {1.0})->Observe(0.5);
  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"test.json.counter\": 9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json.histogram\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// The hot-path contract: N threads incrementing concurrently lose no
// updates, and concurrent snapshots tear nothing structurally.  Run under
// the tsan preset this is the data-race gate for the whole obs layer.
TEST(ObsConcurrencyTest, ConcurrentCounterIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("test.concurrent.counter");
  Histogram* histogram = registry.RegisterHistogram(
      "test.concurrent.histogram", DefaultCostBuckets());
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        counter->Add();
        histogram->Observe(static_cast<double>((t * 31 + i) % 2000));
      }
    });
  }
  // One reader thread snapshotting while writers run: must be race-free
  // and always observe internally consistent sizes.
  threads.emplace_back([&]() {
    for (int i = 0; i < 200; ++i) {
      MetricsSnapshot snap = registry.TakeSnapshot();
      const auto& hist = snap.histograms.at("test.concurrent.histogram");
      ASSERT_EQ(hist.counts.size(), hist.bounds.size() + 1);
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
  EXPECT_EQ(histogram->count(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(ObsConcurrencyTest, ConcurrentRegistrationReturnsOnePointer) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> pointers(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      pointers[t] = registry.RegisterCounter("test.concurrent.register");
      pointers[t]->Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(pointers[t], pointers[0]);
  EXPECT_EQ(pointers[0]->value(), static_cast<uint64_t>(kThreads));
}

TEST(ObsTraceTest, DisabledRecorderCostsNothingAndRecordsNothing) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Disable();
  recorder.Clear();
  {
    TraceSpan span("test.span", "test");
  }
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(ObsTraceTest, EnabledRecorderCapturesSpansAsChromeTraceJson) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable();
  {
    TraceSpan outer("test.outer", "test", "detail");
    TraceSpan inner("test.inner", "test");
  }
  recorder.Disable();
  EXPECT_EQ(recorder.event_count(), 2u);
  std::ostringstream out;
  recorder.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("detail"), std::string::npos);
  recorder.Clear();
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(ObsTraceTest, ConcurrentSpansAllLand) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable();
  constexpr int kThreads = 6;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([]() {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("test.mt", "test");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  recorder.Disable();
  EXPECT_EQ(recorder.event_count(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  recorder.Clear();
}

// End-to-end wiring: driving the actual simulator must move the counters
// the instrumented subsystems registered at static init.  (Exercising the
// stack — not just linking it — is what guarantees the objects carrying
// the registrations are in the binary at all.)
TEST(ObsGlobalWiringTest, SimulationRunMovesCoreCounters) {
  cost::Params params;
  params.N = 4000;
  params.N1 = 4;
  params.N2 = 4;
  params.f = 0.005;
  params.q = 12;
  params.SetUpdateProbability(0.5);
  for (cost::Strategy strategy :
       {cost::Strategy::kAlwaysRecompute, cost::Strategy::kCacheInvalidate,
        cost::Strategy::kUpdateCacheRvm}) {
    sim::Simulator::Options options;
    options.params = params;
    options.seed = 11;
    Result<sim::SimulationResult> run = sim::Simulator::Run(strategy, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
  }
  for (const char* name : {
           "storage.disk.reads",
           "storage.disk.writes",
           "proc.ilock.locks_set",
           "proc.cache_invalidate.accesses",
           "proc.always_recompute.accesses",
           "rete.network.tokens_submitted",
           "sim.workload.tuples_updated",
           "sim.simulator.runs",
           "concurrent.latch.acquisitions",
       }) {
    const Counter* counter = GlobalMetrics().FindCounter(name);
    ASSERT_NE(counter, nullptr) << name << " is not registered";
    EXPECT_GT(counter->value(), 0u) << name << " never incremented";
  }
  // Registered by linked-in subsystems even when the workload leaves them
  // idle (no buffer cache configured in this run).
  EXPECT_NE(GlobalMetrics().FindCounter("storage.buffer_cache.hits"),
            nullptr);
}

}  // namespace
}  // namespace procsim::obs
