#include "storage/page.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "util/rng.h"

namespace procsim::storage {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(PageTest, InsertAndRead) {
  Page page(256);
  const auto record = Bytes("hello");
  Result<uint16_t> slot = page.Insert(record.data(), record.size());
  ASSERT_TRUE(slot.ok());
  Result<std::vector<uint8_t>> read = page.Read(slot.ValueOrDie());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.ValueOrDie(), record);
  EXPECT_EQ(page.live_count(), 1);
}

TEST(PageTest, CapacityCountsPayloadOnly) {
  // A 4000-byte page holds exactly 40 100-byte records (paper's B/S).
  Page page(4000);
  std::vector<uint8_t> record(100, 0xab);
  for (int i = 0; i < 40; ++i) {
    Result<uint16_t> slot = page.Insert(record.data(), record.size());
    ASSERT_TRUE(slot.ok()) << "record " << i;
    EXPECT_EQ(slot.ValueOrDie(), i);
  }
  EXPECT_FALSE(page.Fits(100));
  Result<uint16_t> overflow = page.Insert(record.data(), record.size());
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kOutOfRange);
  // The 40th record (slot 39, payload at offset 0) must still be readable —
  // regression test for the offset-0 tombstone-sentinel bug.
  EXPECT_TRUE(page.IsLive(39));
  EXPECT_TRUE(page.Read(39).ok());
}

TEST(PageTest, DeleteTombstonesAndReusesSlot) {
  Page page(256);
  const auto a = Bytes("aaaa");
  const auto b = Bytes("bbbb");
  uint16_t slot_a = page.Insert(a.data(), a.size()).ValueOrDie();
  uint16_t slot_b = page.Insert(b.data(), b.size()).ValueOrDie();
  ASSERT_TRUE(page.Delete(slot_a).ok());
  EXPECT_FALSE(page.IsLive(slot_a));
  EXPECT_TRUE(page.IsLive(slot_b));
  EXPECT_EQ(page.live_count(), 1);
  EXPECT_EQ(page.Read(slot_a).status().code(), StatusCode::kNotFound);
  // Next insert reuses the tombstoned slot; slot_b is untouched.
  const auto c = Bytes("cccc");
  uint16_t slot_c = page.Insert(c.data(), c.size()).ValueOrDie();
  EXPECT_EQ(slot_c, slot_a);
  EXPECT_EQ(page.Read(slot_b).ValueOrDie(), b);
}

TEST(PageTest, DoubleDeleteFails) {
  Page page(128);
  const auto a = Bytes("x");
  uint16_t slot = page.Insert(a.data(), a.size()).ValueOrDie();
  ASSERT_TRUE(page.Delete(slot).ok());
  EXPECT_FALSE(page.Delete(slot).ok());
}

TEST(PageTest, UpdateInPlaceSameSize) {
  Page page(128);
  const auto a = Bytes("aaaa");
  const auto b = Bytes("bbbb");
  uint16_t slot = page.Insert(a.data(), a.size()).ValueOrDie();
  ASSERT_TRUE(page.Update(slot, b.data(), b.size()).ok());
  EXPECT_EQ(page.Read(slot).ValueOrDie(), b);
}

TEST(PageTest, UpdateGrowingRecordCompacts) {
  Page page(64);
  const auto a = Bytes("aaaaaaaa");
  const auto b = Bytes("bbbbbbbb");
  uint16_t slot_a = page.Insert(a.data(), a.size()).ValueOrDie();
  uint16_t slot_b = page.Insert(b.data(), b.size()).ValueOrDie();
  ASSERT_TRUE(page.Delete(slot_b).ok());
  // Grow a to 48 bytes: requires compaction to make contiguous room.
  std::vector<uint8_t> big(48, 0xcd);
  ASSERT_TRUE(page.Update(slot_a, big.data(), big.size()).ok());
  EXPECT_EQ(page.Read(slot_a).ValueOrDie(), big);
}

TEST(PageTest, UpdateThatCannotFitFails) {
  Page page(32);
  const auto a = Bytes("aaaa");
  uint16_t slot = page.Insert(a.data(), a.size()).ValueOrDie();
  std::vector<uint8_t> big(64, 1);
  Status st = page.Update(slot, big.data(), big.size());
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  // Original record is preserved on failure.
  EXPECT_EQ(page.Read(slot).ValueOrDie(), a);
}

TEST(PageTest, FreeSpaceReclaimedAfterDeleteAndCompaction) {
  Page page(100);
  std::vector<uint8_t> record(20, 7);
  std::vector<uint16_t> slots;
  for (int i = 0; i < 5; ++i) {
    slots.push_back(page.Insert(record.data(), record.size()).ValueOrDie());
  }
  EXPECT_FALSE(page.Fits(20));
  ASSERT_TRUE(page.Delete(slots[1]).ok());
  ASSERT_TRUE(page.Delete(slots[3]).ok());
  EXPECT_TRUE(page.Fits(40));
  // Two more 20-byte records fit again (requires compaction internally).
  EXPECT_TRUE(page.Insert(record.data(), record.size()).ok());
  EXPECT_TRUE(page.Insert(record.data(), record.size()).ok());
  EXPECT_FALSE(page.Fits(20));
}

TEST(PageTest, SerializeRoundTripPreservesSlotsAndTombstones) {
  Page page(256);
  const auto a = Bytes("alpha");
  const auto b = Bytes("bravo");
  const auto c = Bytes("charlie");
  uint16_t slot_a = page.Insert(a.data(), a.size()).ValueOrDie();
  uint16_t slot_b = page.Insert(b.data(), b.size()).ValueOrDie();
  uint16_t slot_c = page.Insert(c.data(), c.size()).ValueOrDie();
  ASSERT_TRUE(page.Delete(slot_b).ok());

  Result<Page> restored = Page::Deserialize(page.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const Page& copy = restored.ValueOrDie();
  EXPECT_EQ(copy.live_count(), 2);
  EXPECT_EQ(copy.Read(slot_a).ValueOrDie(), a);
  EXPECT_FALSE(copy.IsLive(slot_b));
  EXPECT_EQ(copy.Read(slot_c).ValueOrDie(), c);
}

TEST(PageTest, DeserializeRejectsTruncatedInput) {
  Page page(64);
  const auto a = Bytes("data");
  (void)page.Insert(a.data(), a.size());
  std::vector<uint8_t> bytes = page.Serialize();
  bytes.resize(bytes.size() - 2);
  EXPECT_FALSE(Page::Deserialize(bytes).ok());
  bytes.resize(3);
  EXPECT_FALSE(Page::Deserialize(bytes).ok());
}

// Randomized property test: a page behaves like a map<slot, record> under a
// random insert/delete/update workload.
TEST(PagePropertyTest, MatchesReferenceModel) {
  Rng rng(2024);
  Page page(512);
  std::vector<std::pair<uint16_t, std::vector<uint8_t>>> model;
  for (int step = 0; step < 2000; ++step) {
    const int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {
      std::vector<uint8_t> record(1 + rng.Uniform(24));
      for (auto& byte : record) byte = static_cast<uint8_t>(rng.Next());
      Result<uint16_t> slot = page.Insert(record.data(), record.size());
      if (slot.ok()) model.emplace_back(slot.ValueOrDie(), record);
    } else if (op == 1 && !model.empty()) {
      const std::size_t pick = rng.Uniform(model.size());
      ASSERT_TRUE(page.Delete(model[pick].first).ok());
      model.erase(model.begin() + pick);
    } else if (op == 2 && !model.empty()) {
      const std::size_t pick = rng.Uniform(model.size());
      std::vector<uint8_t> record(1 + rng.Uniform(24));
      for (auto& byte : record) byte = static_cast<uint8_t>(rng.Next());
      if (page.Update(model[pick].first, record.data(), record.size()).ok()) {
        model[pick].second = record;
      }
    }
    // Periodic full validation.
    if (step % 250 == 0) {
      EXPECT_EQ(page.live_count(), model.size());
      for (const auto& [slot, record] : model) {
        ASSERT_TRUE(page.IsLive(slot));
        EXPECT_EQ(page.Read(slot).ValueOrDie(), record);
      }
    }
  }
}

}  // namespace
}  // namespace procsim::storage
