// Pins the paper's §8 headline numbers as exact regression anchors.  These
// are the four quantitative claims the whole reproduction hangs on; any
// cost-model change that moves them by more than 1% must be deliberate
// (and update this test alongside the bench goldens).
//
//   * At f = 0.0001 and P = 0.1 (model 1), Cache and Invalidate beats
//     Always Recompute by ~4.76x and the best Update Cache variant by
//     ~7.94x — the paper's "factors of approximately 5 and 7".
//   * The AVM/RVM sharing crossover sits at SF ~= 0.951 under model 1
//     (figure 11: RVM only catches up when nearly all P2 procedures share
//     their selection) and SF ~= 0.459 under model 2 (figure 18: the
//     precomputed join tail pays off at moderate sharing).
#include <gtest/gtest.h>

#include <algorithm>

#include "cost/model.h"
#include "cost/params.h"
#include "cost/sweeps.h"

namespace procsim::cost {
namespace {

// 1% relative tolerance: tight enough to catch any real model change,
// loose enough to survive benign floating-point reassociation.
void ExpectWithinOnePercent(double expected, double actual) {
  EXPECT_NEAR(actual, expected, 0.01 * expected);
}

TEST(PaperClaimsGoldenTest, CacheInvalidateSpeedupAtSmallObjects) {
  Params params;
  params.SetUpdateProbability(0.1);
  params.f = 0.0001;
  AnalyticModel model(params, ProcModel::kModel1);
  const double ar = model.CostPerQuery(Strategy::kAlwaysRecompute);
  const double ci = model.CostPerQuery(Strategy::kCacheInvalidate);
  ExpectWithinOnePercent(4.7642, ar / ci);
}

TEST(PaperClaimsGoldenTest, UpdateCacheSpeedupAtSmallObjects) {
  Params params;
  params.SetUpdateProbability(0.1);
  params.f = 0.0001;
  AnalyticModel model(params, ProcModel::kModel1);
  const double ar = model.CostPerQuery(Strategy::kAlwaysRecompute);
  const double uc = std::min(model.CostPerQuery(Strategy::kUpdateCacheAvm),
                             model.CostPerQuery(Strategy::kUpdateCacheRvm));
  ExpectWithinOnePercent(7.9405, ar / uc);
}

TEST(PaperClaimsGoldenTest, SharingCrossoverModel1) {
  Params params;
  const double crossover = SharingCrossover(params, ProcModel::kModel1);
  ASSERT_GT(crossover, 0) << "RVM never catches AVM under model 1";
  ExpectWithinOnePercent(0.9508, crossover);
}

TEST(PaperClaimsGoldenTest, SharingCrossoverModel2) {
  Params params;
  const double crossover = SharingCrossover(params, ProcModel::kModel2);
  ASSERT_GT(crossover, 0) << "RVM never catches AVM under model 2";
  ExpectWithinOnePercent(0.4590, crossover);
}

// The crossovers are meaningful only if RVM is genuinely more expensive
// than AVM below them and cheaper above — assert the bracketing too, so a
// degenerate SharingCrossover implementation cannot satisfy the pins.
TEST(PaperClaimsGoldenTest, CrossoverBracketsAreReal) {
  for (ProcModel model : {ProcModel::kModel1, ProcModel::kModel2}) {
    Params params;
    const double crossover = SharingCrossover(params, model);
    ASSERT_GT(crossover, 0.05);
    ASSERT_LT(crossover, 0.99);
    Params below = params;
    below.SF = crossover - 0.05;
    Params above = params;
    above.SF = std::min(1.0, crossover + 0.05);
    AnalyticModel below_model(below, model);
    AnalyticModel above_model(above, model);
    EXPECT_GT(below_model.CostPerQuery(Strategy::kUpdateCacheRvm),
              below_model.CostPerQuery(Strategy::kUpdateCacheAvm));
    EXPECT_LE(above_model.CostPerQuery(Strategy::kUpdateCacheRvm),
              above_model.CostPerQuery(Strategy::kUpdateCacheAvm));
  }
}

}  // namespace
}  // namespace procsim::cost
