#include "relational/parser.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "relational/executor.h"

namespace procsim::rel {
namespace {

using parser_internal::Lex;
using parser_internal::TokenKind;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, TokenKindsAndValues) {
  auto tokens = Lex("retrieve (EMP.all) where EMP.age >= -3 and EMP.name != "
                    "\"Ann Smith\"");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  const auto& t = tokens.ValueOrDie();
  EXPECT_EQ(t[0].kind, TokenKind::kIdent);
  EXPECT_EQ(t[0].text, "retrieve");
  EXPECT_EQ(t[1].kind, TokenKind::kLParen);
  EXPECT_EQ(t[3].kind, TokenKind::kDot);
  // ">=" lexes as one operator token.
  const auto ge = std::find_if(t.begin(), t.end(), [](const auto& token) {
    return token.kind == TokenKind::kOp && token.text == ">=";
  });
  ASSERT_NE(ge, t.end());
  // Negative integer literal.
  const auto minus3 = std::find_if(t.begin(), t.end(), [](const auto& token) {
    return token.kind == TokenKind::kInteger;
  });
  ASSERT_NE(minus3, t.end());
  EXPECT_EQ(minus3->integer, -3);
  // String body excludes the quotes.
  const auto str = std::find_if(t.begin(), t.end(), [](const auto& token) {
    return token.kind == TokenKind::kString;
  });
  ASSERT_NE(str, t.end());
  EXPECT_EQ(str->text, "Ann Smith");
  EXPECT_EQ(t.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("EMP.age @ 3").ok());
  EXPECT_FALSE(Lex("name = \"unterminated").ok());
  EXPECT_FALSE(Lex("a ! b").ok());
}

// ---------------------------------------------------------------------------
// Parser + planner against a catalog
// ---------------------------------------------------------------------------

class QuelParserTest : public ::testing::Test {
 protected:
  QuelParserTest()
      : disk_(4000, &meter_),
        catalog_(&disk_),
        executor_(&catalog_, &meter_),
        parser_(&catalog_) {
    Relation::Options emp_options;
    emp_options.tuple_width_bytes = 100;
    emp_options.btree_column = 0;
    emp_ = catalog_
               .CreateRelation("EMP",
                               Schema({{"empno", ValueType::kInt64},
                                       {"dept", ValueType::kInt64},
                                       {"job", ValueType::kInt64}}),
                               emp_options)
               .ValueOrDie();
    Relation::Options dept_options;
    dept_options.tuple_width_bytes = 100;
    dept_options.hash_column = 0;
    dept_ = catalog_
                .CreateRelation("DEPT",
                                Schema({{"dname", ValueType::kInt64},
                                        {"floor", ValueType::kInt64},
                                        {"site", ValueType::kInt64}}),
                                dept_options)
                .ValueOrDie();
    Relation::Options site_options;
    site_options.tuple_width_bytes = 100;
    site_options.hash_column = 0;
    site_ = catalog_
                .CreateRelation("SITE",
                                Schema({{"sid", ValueType::kInt64},
                                        {"city", ValueType::kInt64}}),
                                site_options)
                .ValueOrDie();
    for (int64_t e = 0; e < 60; ++e) {
      (void)emp_->Insert(Tuple({Value(e), Value(e % 6), Value(e % 3)}));
    }
    for (int64_t d = 0; d < 6; ++d) {
      (void)dept_->Insert(Tuple({Value(d), Value(d % 2), Value(d % 3)}));
    }
    for (int64_t s = 0; s < 3; ++s) {
      (void)site_->Insert(Tuple({Value(s), Value(s * 100)}));
    }
  }

  CostMeter meter_;
  storage::SimulatedDisk disk_;
  Catalog catalog_;
  Executor executor_;
  QuelParser parser_;
  Relation* emp_ = nullptr;
  Relation* dept_ = nullptr;
  Relation* site_ = nullptr;
};

TEST_F(QuelParserTest, SimpleSelectionWithRangeFolding) {
  auto query = parser_.Parse(
      "retrieve (EMP.all) where EMP.empno >= 10 and EMP.empno <= 19");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query.ValueOrDie().base.relation, "EMP");
  EXPECT_EQ(query.ValueOrDie().base.lo, 10);
  EXPECT_EQ(query.ValueOrDie().base.hi, 19);
  EXPECT_TRUE(query.ValueOrDie().base.residual.empty());
  EXPECT_TRUE(query.ValueOrDie().joins.empty());
  EXPECT_EQ(executor_.Execute(query.ValueOrDie()).ValueOrDie().size(), 10u);
}

TEST_F(QuelParserTest, StrictBoundsAndEqualityFold) {
  auto query = parser_.Parse(
      "retrieve (EMP.all) where EMP.empno > 9 and EMP.empno < 20");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query.ValueOrDie().base.lo, 10);
  EXPECT_EQ(query.ValueOrDie().base.hi, 19);
  auto point = parser_.Parse("retrieve (EMP.all) where EMP.empno = 7");
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point.ValueOrDie().base.lo, 7);
  EXPECT_EQ(point.ValueOrDie().base.hi, 7);
}

TEST_F(QuelParserTest, NonKeyRestrictionsBecomeResidual) {
  auto query = parser_.Parse(
      "retrieve (EMP.all) where EMP.empno <= 29 and EMP.job = 1");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query.ValueOrDie().base.residual.size(), 1u);
  // empno 0..29 with job == 1: 10 rows.
  EXPECT_EQ(executor_.Execute(query.ValueOrDie()).ValueOrDie().size(), 10u);
}

TEST_F(QuelParserTest, ReversedConstantComparisonIsMirrored) {
  // "10 <= EMP.empno" must mean empno >= 10.
  auto query = parser_.Parse(
      "retrieve (EMP.all) where 10 <= EMP.empno and 19 >= EMP.empno");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query.ValueOrDie().base.lo, 10);
  EXPECT_EQ(query.ValueOrDie().base.hi, 19);
}

TEST_F(QuelParserTest, TwoWayJoinPlansHashProbe) {
  auto query = parser_.Parse(
      "retrieve (EMP.all, DEPT.all) where EMP.dept = DEPT.dname and "
      "DEPT.floor = 1 and EMP.empno <= 29");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const ProcedureQuery& q = query.ValueOrDie();
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(q.joins[0].relation, "DEPT");
  EXPECT_EQ(q.joins[0].probe_column, 1u);  // EMP.dept
  EXPECT_EQ(q.joins[0].residual.size(), 1u);
  // 30 emps, join always matches, floor==1 keeps odd depts: 15 rows.
  EXPECT_EQ(executor_.Execute(q).ValueOrDie().size(), 15u);
}

TEST_F(QuelParserTest, JoinDirectionIsNormalized) {
  // The equijoin written "DEPT.dname = EMP.dept" still probes DEPT.
  auto query = parser_.Parse(
      "retrieve (EMP.all, DEPT.all) where DEPT.dname = EMP.dept");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query.ValueOrDie().joins.size(), 1u);
  EXPECT_EQ(query.ValueOrDie().joins[0].relation, "DEPT");
}

TEST_F(QuelParserTest, ThreeWayChain) {
  auto query = parser_.Parse(
      "retrieve (EMP.all, DEPT.all, SITE.all) where EMP.dept = DEPT.dname "
      "and DEPT.site = SITE.sid and EMP.empno <= 11");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const ProcedureQuery& q = query.ValueOrDie();
  ASSERT_EQ(q.joins.size(), 2u);
  EXPECT_EQ(q.joins[0].relation, "DEPT");
  EXPECT_EQ(q.joins[1].relation, "SITE");
  EXPECT_EQ(q.joins[1].probe_column, 5u);  // DEPT.site in EMP(3)++DEPT(3)
  const auto rows = executor_.Execute(q).ValueOrDie();
  EXPECT_EQ(rows.size(), 12u);
  for (const Tuple& row : rows) {
    EXPECT_EQ(row.value(5).AsInt64(), row.value(6).AsInt64());
  }
}

TEST_F(QuelParserTest, ParsesTheExampleFromThePaper) {
  // Figure-1 style query (job codes as integers in this schema).
  auto query = parser_.Parse(
      "retrieve (EMP.all, DEPT.all)\n"
      "where EMP.dept = DEPT.dname\n"
      "  and EMP.job = 1\n"
      "  and DEPT.floor = 1");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_FALSE(executor_.Execute(query.ValueOrDie()).ValueOrDie().empty());
}

// --- error paths -------------------------------------------------------------

TEST_F(QuelParserTest, UnknownRelationOrColumn) {
  EXPECT_EQ(parser_.Parse("retrieve (NOPE.all)").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(parser_.Parse("retrieve (EMP.all) where EMP.bogus = 1")
                .status()
                .code(),
            StatusCode::kNotFound);
  // Qualification referencing a relation not in the target list.
  EXPECT_FALSE(
      parser_.Parse("retrieve (EMP.all) where DEPT.floor = 1").ok());
}

TEST_F(QuelParserTest, AnchorMustHaveBTree) {
  EXPECT_FALSE(parser_.Parse("retrieve (DEPT.all)").ok());
}

TEST_F(QuelParserTest, DisconnectedJoinGraphRejected) {
  EXPECT_FALSE(
      parser_.Parse("retrieve (EMP.all, DEPT.all) where EMP.job = 1").ok());
}

TEST_F(QuelParserTest, NonEquiJoinRejected) {
  EXPECT_EQ(parser_
                .Parse("retrieve (EMP.all, DEPT.all) where "
                       "EMP.dept < DEPT.dname")
                .status()
                .code(),
            StatusCode::kUnimplemented);
}

TEST_F(QuelParserTest, JoinWithoutHashIndexRejected) {
  // Joining on DEPT.floor (not the hashed column) cannot be planned.
  EXPECT_FALSE(parser_
                   .Parse("retrieve (EMP.all, DEPT.all) where "
                          "EMP.dept = DEPT.floor")
                   .ok());
}

TEST_F(QuelParserTest, SyntaxErrors) {
  EXPECT_FALSE(parser_.Parse("").ok());
  EXPECT_FALSE(parser_.Parse("fetch (EMP.all)").ok());
  EXPECT_FALSE(parser_.Parse("retrieve EMP.all").ok());
  EXPECT_FALSE(parser_.Parse("retrieve (EMP.all) where").ok());
  EXPECT_FALSE(parser_.Parse("retrieve (EMP.all) where EMP.job").ok());
  EXPECT_FALSE(parser_.Parse("retrieve (EMP.all) garbage").ok());
  EXPECT_FALSE(parser_.Parse("retrieve (EMP.all) where 1 = 2").ok());
}

TEST_F(QuelParserTest, ParsedQueryRoundTripsThroughStrategies) {
  // A parsed procedure behaves identically to a hand-built one.
  auto parsed = parser_.Parse(
      "retrieve (EMP.all, DEPT.all) where EMP.dept = DEPT.dname and "
      "EMP.empno >= 12 and EMP.empno <= 23");
  ASSERT_TRUE(parsed.ok());
  ProcedureQuery manual;
  manual.base = BaseSelection{"EMP", 12, 23, Conjunction{}};
  JoinStage stage;
  stage.relation = "DEPT";
  stage.probe_column = 1;
  manual.joins.push_back(stage);
  auto canon = [](std::vector<Tuple> rows) {
    std::vector<std::string> out;
    for (const Tuple& row : rows) out.push_back(row.ToString());
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(canon(executor_.Execute(parsed.ValueOrDie()).ValueOrDie()),
            canon(executor_.Execute(manual).ValueOrDie()));
}

}  // namespace
}  // namespace procsim::rel
