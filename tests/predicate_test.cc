#include "relational/predicate.h"

#include <gtest/gtest.h>

namespace procsim::rel {
namespace {

Tuple Row(int64_t a, int64_t b) {
  return Tuple({Value(a), Value(b)});
}

TEST(EvalCompareTest, AllSixOperators) {
  const Value two(int64_t{2});
  const Value three(int64_t{3});
  EXPECT_TRUE(EvalCompare(two, CompareOp::kLt, three));
  EXPECT_FALSE(EvalCompare(three, CompareOp::kLt, two));
  EXPECT_TRUE(EvalCompare(three, CompareOp::kGt, two));
  EXPECT_TRUE(EvalCompare(two, CompareOp::kLe, two));
  EXPECT_TRUE(EvalCompare(two, CompareOp::kGe, two));
  EXPECT_TRUE(EvalCompare(two, CompareOp::kEq, two));
  EXPECT_FALSE(EvalCompare(two, CompareOp::kEq, three));
  EXPECT_TRUE(EvalCompare(two, CompareOp::kNe, three));
}

TEST(PredicateTermTest, MatchesAgainstColumn) {
  PredicateTerm term{1, CompareOp::kGe, Value(int64_t{10})};
  EXPECT_TRUE(term.Matches(Row(0, 10)));
  EXPECT_TRUE(term.Matches(Row(0, 11)));
  EXPECT_FALSE(term.Matches(Row(0, 9)));
}

TEST(PredicateTermTest, HashDiscriminatesStructure) {
  PredicateTerm a{0, CompareOp::kEq, Value(int64_t{1})};
  PredicateTerm b{0, CompareOp::kEq, Value(int64_t{1})};
  PredicateTerm c{0, CompareOp::kNe, Value(int64_t{1})};
  PredicateTerm d{1, CompareOp::kEq, Value(int64_t{1})};
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), c.Hash());
  EXPECT_NE(a.Hash(), d.Hash());
}

TEST(ConjunctionTest, EmptyMatchesEverything) {
  Conjunction empty;
  EXPECT_TRUE(empty.Matches(Row(1, 2)));
  EXPECT_EQ(empty.ToString(), "true");
}

TEST(ConjunctionTest, AllTermsMustHold) {
  Conjunction both({PredicateTerm{0, CompareOp::kGe, Value(int64_t{5})},
                    PredicateTerm{1, CompareOp::kLt, Value(int64_t{10})}});
  EXPECT_TRUE(both.Matches(Row(5, 9)));
  EXPECT_FALSE(both.Matches(Row(4, 9)));
  EXPECT_FALSE(both.Matches(Row(5, 10)));
}

TEST(ConjunctionTest, ScreenCountingShortCircuits) {
  Conjunction both({PredicateTerm{0, CompareOp::kGe, Value(int64_t{5})},
                    PredicateTerm{1, CompareOp::kLt, Value(int64_t{10})}});
  std::size_t screens = 0;
  EXPECT_FALSE(both.Matches(Row(0, 0), &screens));
  EXPECT_EQ(screens, 1u);  // first term fails, second never evaluated
  screens = 0;
  EXPECT_TRUE(both.Matches(Row(5, 0), &screens));
  EXPECT_EQ(screens, 2u);
}

TEST(ConjunctionTest, ToStringWithSchema) {
  Schema schema({Column{"age", ValueType::kInt64},
                 Column{"dept", ValueType::kInt64}});
  Conjunction c({PredicateTerm{0, CompareOp::kGt, Value(int64_t{30})}});
  EXPECT_EQ(c.ToString(&schema), "age > 30");
}

TEST(JoinConditionTest, MatchesAcrossTuples) {
  JoinCondition join{1, CompareOp::kEq, 0};
  EXPECT_TRUE(join.Matches(Row(0, 7), Row(7, 0)));
  EXPECT_FALSE(join.Matches(Row(0, 7), Row(8, 0)));
}

}  // namespace
}  // namespace procsim::rel
