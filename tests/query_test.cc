#include "relational/query.h"

#include <gtest/gtest.h>

#include "relational/catalog.h"

namespace procsim::rel {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() : disk_(4000, &meter_), catalog_(&disk_) {
    Relation::Options a_options;
    a_options.btree_column = 0;
    (void)catalog_.CreateRelation(
        "A", Schema({{"x", ValueType::kInt64}, {"y", ValueType::kInt64}}),
        a_options);
    Relation::Options b_options;
    b_options.hash_column = 0;
    (void)catalog_.CreateRelation("B", Schema({{"z", ValueType::kInt64}}),
                                  b_options);
  }
  CostMeter meter_;
  storage::SimulatedDisk disk_;
  Catalog catalog_;
};

TEST_F(QueryTest, ToStringDescribesPlan) {
  ProcedureQuery query;
  query.base = BaseSelection{
      "A", 1, 9,
      Conjunction({PredicateTerm{1, CompareOp::kGt, Value(int64_t{5})}})};
  JoinStage stage;
  stage.relation = "B";
  stage.probe_column = 1;
  query.joins.push_back(stage);
  const std::string text = query.ToString();
  EXPECT_NE(text.find("A[btree in [1, 9]"), std::string::npos);
  EXPECT_NE(text.find("$1 > 5"), std::string::npos);
  EXPECT_NE(text.find("join B on out.$1 = hash(B)"), std::string::npos);
}

TEST_F(QueryTest, OutputSchemaPrefixesAndConcatenates) {
  ProcedureQuery query;
  query.base = BaseSelection{"A", 0, 1, Conjunction{}};
  JoinStage stage;
  stage.relation = "B";
  stage.probe_column = 0;
  query.joins.push_back(stage);
  Result<Schema> schema = query.OutputSchema(catalog_);
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema.ValueOrDie().num_columns(), 3u);
  EXPECT_EQ(schema.ValueOrDie().column(0).name, "A.x");
  EXPECT_EQ(schema.ValueOrDie().column(1).name, "A.y");
  EXPECT_EQ(schema.ValueOrDie().column(2).name, "B.z");
}

TEST_F(QueryTest, OutputSchemaFailsForUnknownRelation) {
  ProcedureQuery query;
  query.base = BaseSelection{"MISSING", 0, 1, Conjunction{}};
  EXPECT_EQ(query.OutputSchema(catalog_).status().code(),
            StatusCode::kNotFound);
  query.base.relation = "A";
  JoinStage stage;
  stage.relation = "NOPE";
  query.joins.push_back(stage);
  EXPECT_EQ(query.OutputSchema(catalog_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(QueryTest, SelectionOnlyStringOmitsJoins) {
  ProcedureQuery query;
  query.base = BaseSelection{"A", 3, 3, Conjunction{}};
  EXPECT_EQ(query.ToString(), "A[btree in [3, 3]]");
}

}  // namespace
}  // namespace procsim::rel
