// Recovery idempotence: recovering the same surviving prefix twice must
// yield byte-identical engines, and a recovered engine can itself crash and
// recover (its WAL carries the surviving records verbatim) with no drift —
// the fixed-point property that makes crash-during-recovery harmless in
// this redo-only design.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/crash.h"
#include "sim/workload.h"
#include "storage/wal.h"
#include "txn/engine.h"

namespace procsim::txn {
namespace {

TxnEngine::Options SmallOptions(uint64_t seed) {
  TxnEngine::Options options;
  options.params.N = 80;
  options.params.f_R2 = 0.1;
  options.params.f_R3 = 0.1;
  options.params.l = 2;
  options.params.N1 = 3;
  options.params.N2 = 3;
  options.params.SF = 0.5;
  options.params.f = 0.1;
  options.params.f2 = 0.3;
  options.seed = seed;
  options.mix.update_batch = static_cast<std::size_t>(options.params.l);
  return options;
}

/// A transactional op stream with commits, aborts and interleaved reads.
std::vector<sim::WorkloadOp> SomeOps(const TxnEngine::Options& options,
                                     std::size_t count) {
  sim::Workload workload(options.mix,
                         static_cast<std::size_t>(options.params.N1 +
                                                  options.params.N2),
                         options.seed + 1000);
  audit::TxnWrapOptions wrap;
  wrap.seed = options.seed + 2000;
  wrap.abort_probability = 0.2;
  return audit::WrapInTransactions(workload.Take(count), wrap);
}

void ExpectSameRecords(const std::vector<storage::WalRecord>& a,
                       const std::vector<storage::WalRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lsn, b[i].lsn) << "record " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "record " << i;
    EXPECT_EQ(a[i].txn, b[i].txn) << "record " << i;
    EXPECT_EQ(a[i].a, b[i].a) << "record " << i;
    EXPECT_EQ(a[i].b, b[i].b) << "record " << i;
    EXPECT_EQ(a[i].bitmap, b[i].bitmap) << "record " << i;
  }
}

TEST(RecoveryIdempotenceTest, TwoRecoveriesFromOnePrefixAreByteIdentical) {
  const TxnEngine::Options options = SmallOptions(11);
  Result<std::unique_ptr<TxnEngine>> live = TxnEngine::Create(options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  ASSERT_TRUE(live.ValueOrDie()->Run(SomeOps(options, 24)).ok());
  ASSERT_TRUE(live.ValueOrDie()->Flush().ok());
  const std::vector<storage::WalRecord> wal =
      live.ValueOrDie()->WalSnapshot();
  ASSERT_GT(wal.size(), 4u);

  // Cut mid-log so the prefix straddles committed and uncommitted work.
  const std::vector<storage::WalRecord> prefix(wal.begin(),
                                               wal.begin() + wal.size() / 2);
  TxnEngine::RecoveryReport first_report, second_report;
  Result<std::unique_ptr<TxnEngine>> first =
      TxnEngine::Recover(options, prefix, {}, &first_report);
  Result<std::unique_ptr<TxnEngine>> second =
      TxnEngine::Recover(options, prefix, {}, &second_report);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  Result<std::string> first_digest = first.ValueOrDie()->StateDigest();
  Result<std::string> second_digest = second.ValueOrDie()->StateDigest();
  ASSERT_TRUE(first_digest.ok());
  ASSERT_TRUE(second_digest.ok());
  EXPECT_EQ(first_digest.ValueOrDie(), second_digest.ValueOrDie());
  ExpectSameRecords(first.ValueOrDie()->WalSnapshot(),
                    second.ValueOrDie()->WalSnapshot());
  EXPECT_EQ(first_report.committed_txns, second_report.committed_txns);
  EXPECT_EQ(first_report.replayed_mutations,
            second_report.replayed_mutations);
  EXPECT_EQ(first_report.log_restored_valid,
            second_report.log_restored_valid);
  EXPECT_EQ(first_report.surviving_records, prefix.size());
}

TEST(RecoveryIdempotenceTest, RecoveringTheRecoveredEngineIsAFixedPoint) {
  const TxnEngine::Options options = SmallOptions(23);
  Result<std::unique_ptr<TxnEngine>> live = TxnEngine::Create(options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  ASSERT_TRUE(live.ValueOrDie()->Run(SomeOps(options, 20)).ok());
  ASSERT_TRUE(live.ValueOrDie()->Flush().ok());
  const std::vector<storage::WalRecord> wal =
      live.ValueOrDie()->WalSnapshot();
  const std::vector<storage::WalRecord> prefix(
      wal.begin(), wal.begin() + (2 * wal.size()) / 3);

  Result<std::unique_ptr<TxnEngine>> once =
      TxnEngine::Recover(options, prefix, {});
  ASSERT_TRUE(once.ok()) << once.status().ToString();
  // The recovered engine's own WAL is the surviving prefix verbatim…
  ExpectSameRecords(once.ValueOrDie()->WalSnapshot(), prefix);
  // …so crashing it again (full-log "crash") and recovering reproduces the
  // same state, digests and log.
  Result<std::unique_ptr<TxnEngine>> twice =
      TxnEngine::Recover(options, once.ValueOrDie()->WalSnapshot(), {});
  ASSERT_TRUE(twice.ok()) << twice.status().ToString();
  Result<std::string> once_digest = once.ValueOrDie()->StateDigest();
  Result<std::string> twice_digest = twice.ValueOrDie()->StateDigest();
  ASSERT_TRUE(once_digest.ok());
  ASSERT_TRUE(twice_digest.ok());
  EXPECT_EQ(once_digest.ValueOrDie(), twice_digest.ValueOrDie());
  ExpectSameRecords(once.ValueOrDie()->WalSnapshot(),
                    twice.ValueOrDie()->WalSnapshot());
  EXPECT_TRUE(twice.ValueOrDie()->CompareAllAgainstOracle().ok());
}

TEST(RecoveryIdempotenceTest, RecoveredEngineNeverReusesLoggedTxnIds) {
  const TxnEngine::Options options = SmallOptions(31);
  Result<std::unique_ptr<TxnEngine>> live = TxnEngine::Create(options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  ASSERT_TRUE(live.ValueOrDie()->Run(SomeOps(options, 16)).ok());
  ASSERT_TRUE(live.ValueOrDie()->Flush().ok());
  const std::vector<storage::WalRecord> wal =
      live.ValueOrDie()->WalSnapshot();
  TxnId max_logged = 0;
  for (const storage::WalRecord& record : wal) {
    if (record.txn > max_logged) max_logged = record.txn;
  }
  ASSERT_GT(max_logged, 0u);

  Result<std::unique_ptr<TxnEngine>> recovered =
      TxnEngine::Recover(options, wal, {});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // New history must not collide with logged ids, or the WAL's
  // one-termination-per-transaction invariant breaks on the next commit.
  const TxnId fresh = recovered.ValueOrDie()->Begin();
  EXPECT_GT(fresh, max_logged);
  ASSERT_TRUE(recovered.ValueOrDie()->Commit(fresh).ok());
  ASSERT_TRUE(recovered.ValueOrDie()->Flush().ok());
  EXPECT_TRUE(recovered.ValueOrDie()->wal().CheckConsistency().ok());
}

}  // namespace
}  // namespace procsim::txn
