// Delta-debugging reducer: a planted lost invalidation (kSilentUpdate)
// must shrink to a minimal reproduction automatically, and a passing
// stream must be rejected rather than "reduced" to noise.
#include "audit/reduce.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/crosscheck.h"

namespace procsim::audit {
namespace {

using sim::WorkloadOp;

CrossCheckOptions ReducerOptions() {
  CrossCheckOptions options;
  options.params.N = 160;
  options.params.f_R2 = 0.1;
  options.params.f_R3 = 0.1;
  // A large update batch so a single silent update transaction almost
  // surely breaks some procedure's interval — the failure the reducer
  // must preserve while shrinking.
  options.params.l = 20;
  options.params.N1 = 4;
  options.params.N2 = 4;
  options.params.SF = 0.5;
  options.params.f = 0.08;
  options.params.f2 = 0.3;
  options.seed = 20260806;
  return options;
}

TEST(ReduceTest, PlantedSilentUpdateShrinksToMinimalRepro) {
  CrossCheckOptions options = ReducerOptions();
  options.steps = 60;
  std::vector<WorkloadOp> ops = GenerateOpStream(options);
  ASSERT_EQ(ops.size(), 60u);
  ops[17].kind = WorkloadOp::Kind::kSilentUpdate;
  if (ops[17].value == 0) ops[17].value = 12345;

  Result<ReduceOutcome> reduced = ReduceOpStream(options, ops);
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  const ReduceOutcome& outcome = reduced.ValueOrDie();
  // The silent update fails on its own (CompareBatch runs right after the
  // un-notified mutation), so 1-minimality means a tiny repro.
  EXPECT_LE(outcome.minimal.size(), 10u);
  EXPECT_GE(outcome.minimal.size(), 1u);
  EXPECT_GT(outcome.probes, 1u);
  EXPECT_FALSE(outcome.failure.empty());
  EXPECT_NE(outcome.test_case.find("kSilentUpdate"), std::string::npos);

  // The minimal stream really does still fail...
  EXPECT_FALSE(RunOpStream(options, outcome.minimal).ok());
  // ...and is 1-minimal: dropping any single op makes it pass.
  for (std::size_t i = 0; i < outcome.minimal.size(); ++i) {
    std::vector<WorkloadOp> without = outcome.minimal;
    without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_TRUE(RunOpStream(options, without).ok())
        << "op " << i << " is removable";
  }
}

TEST(ReduceTest, PassingStreamIsRejected) {
  CrossCheckOptions options = ReducerOptions();
  options.steps = 20;
  const std::vector<WorkloadOp> ops = GenerateOpStream(options);
  Result<ReduceOutcome> reduced = ReduceOpStream(options, ops);
  EXPECT_FALSE(reduced.ok());
  EXPECT_EQ(reduced.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReduceTest, GeneratedStreamMatchesCrossCheck) {
  // CrossCheck(options) must be exactly GenerateOpStream + RunOpStream:
  // same counts, same comparisons.
  CrossCheckOptions options = ReducerOptions();
  options.steps = 40;
  Result<CrossCheckReport> direct = CrossCheck(options);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  Result<CrossCheckReport> replayed =
      RunOpStream(options, GenerateOpStream(options));
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(direct.ValueOrDie().accesses, replayed.ValueOrDie().accesses);
  EXPECT_EQ(direct.ValueOrDie().update_transactions,
            replayed.ValueOrDie().update_transactions);
  EXPECT_EQ(direct.ValueOrDie().comparisons,
            replayed.ValueOrDie().comparisons);
}

}  // namespace
}  // namespace procsim::audit
