// Delta-debugging reducer: a planted lost invalidation (kSilentUpdate)
// must shrink to a minimal reproduction automatically, and a passing
// stream must be rejected rather than "reduced" to noise.
#include "audit/reduce.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/crosscheck.h"

namespace procsim::audit {
namespace {

using sim::WorkloadOp;

CrossCheckOptions ReducerOptions() {
  CrossCheckOptions options;
  options.params.N = 160;
  options.params.f_R2 = 0.1;
  options.params.f_R3 = 0.1;
  // A large update batch so a single silent update transaction almost
  // surely breaks some procedure's interval — the failure the reducer
  // must preserve while shrinking.
  options.params.l = 20;
  options.params.N1 = 4;
  options.params.N2 = 4;
  options.params.SF = 0.5;
  options.params.f = 0.08;
  options.params.f2 = 0.3;
  options.seed = 20260806;
  return options;
}

TEST(ReduceTest, PlantedSilentUpdateShrinksToMinimalRepro) {
  CrossCheckOptions options = ReducerOptions();
  options.steps = 60;
  std::vector<WorkloadOp> ops = GenerateOpStream(options);
  ASSERT_EQ(ops.size(), 60u);
  ops[17].kind = WorkloadOp::Kind::kSilentUpdate;
  if (ops[17].value == 0) ops[17].value = 12345;

  Result<ReduceOutcome> reduced = ReduceOpStream(options, ops);
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  const ReduceOutcome& outcome = reduced.ValueOrDie();
  // The silent update fails on its own (CompareBatch runs right after the
  // un-notified mutation), so 1-minimality means a tiny repro.
  EXPECT_LE(outcome.minimal.size(), 10u);
  EXPECT_GE(outcome.minimal.size(), 1u);
  EXPECT_GT(outcome.probes, 1u);
  EXPECT_FALSE(outcome.failure.empty());
  EXPECT_NE(outcome.test_case.find("kSilentUpdate"), std::string::npos);

  // The minimal stream really does still fail...
  EXPECT_FALSE(RunOpStream(options, outcome.minimal).ok());
  // ...and is 1-minimal: dropping any single op makes it pass.
  for (std::size_t i = 0; i < outcome.minimal.size(); ++i) {
    std::vector<WorkloadOp> without = outcome.minimal;
    without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_TRUE(RunOpStream(options, without).ok())
        << "op " << i << " is removable";
  }
}

TEST(ReduceTest, PassingStreamIsRejected) {
  CrossCheckOptions options = ReducerOptions();
  options.steps = 20;
  const std::vector<WorkloadOp> ops = GenerateOpStream(options);
  Result<ReduceOutcome> reduced = ReduceOpStream(options, ops);
  EXPECT_FALSE(reduced.ok());
  EXPECT_EQ(reduced.status().code(), StatusCode::kInvalidArgument);
}

TEST(NormalizeTxnMarkersTest, RepairsSlicedMarkerStreams) {
  const auto kind = [](const WorkloadOp& op) { return op.kind; };
  // Orphan closers (a slice dropped their kBegin) are removed.
  std::vector<WorkloadOp> orphans = {
      {WorkloadOp::Kind::kCommit, 0},
      {WorkloadOp::Kind::kUpdate, 5},
      {WorkloadOp::Kind::kAbort, 0},
  };
  std::vector<WorkloadOp> repaired = NormalizeTxnMarkers(orphans);
  ASSERT_EQ(repaired.size(), 1u);
  EXPECT_EQ(kind(repaired[0]), WorkloadOp::Kind::kUpdate);

  // A nested kBegin (its closer was sliced away) is dropped; the stream
  // stays one open transaction, closed at the end.
  std::vector<WorkloadOp> nested = {
      {WorkloadOp::Kind::kBegin, 0},
      {WorkloadOp::Kind::kUpdate, 5},
      {WorkloadOp::Kind::kBegin, 0},
      {WorkloadOp::Kind::kInsert, 7},
  };
  repaired = NormalizeTxnMarkers(nested);
  ASSERT_EQ(repaired.size(), 4u);
  EXPECT_EQ(kind(repaired[0]), WorkloadOp::Kind::kBegin);
  EXPECT_EQ(kind(repaired[1]), WorkloadOp::Kind::kUpdate);
  EXPECT_EQ(kind(repaired[2]), WorkloadOp::Kind::kInsert);
  EXPECT_EQ(kind(repaired[3]), WorkloadOp::Kind::kCommit);

  // Idempotent, and the identity on well-formed streams.
  const std::vector<WorkloadOp> well_formed = {
      {WorkloadOp::Kind::kBegin, 0},   {WorkloadOp::Kind::kUpdate, 5},
      {WorkloadOp::Kind::kCommit, 0},  {WorkloadOp::Kind::kAccess, 1},
      {WorkloadOp::Kind::kBegin, 0},   {WorkloadOp::Kind::kDelete, 9},
      {WorkloadOp::Kind::kAbort, 0},
  };
  const std::vector<WorkloadOp> once = NormalizeTxnMarkers(well_formed);
  ASSERT_EQ(once.size(), well_formed.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(kind(once[i]), well_formed[i].kind) << "op " << i;
  }
  const std::vector<WorkloadOp> twice = NormalizeTxnMarkers(once);
  ASSERT_EQ(twice.size(), once.size());
}

TEST(ReduceTest, TransactionalStreamShrinksWithMarkersPaired) {
  CrossCheckOptions options = ReducerOptions();
  options.steps = 40;
  std::vector<WorkloadOp> ops = GenerateOpStream(options);
  // Bracket every op into explicit transactions, then plant the bug inside
  // one of them.
  std::vector<WorkloadOp> wrapped;
  for (const WorkloadOp& op : ops) {
    if (sim::IsMutationOp(op.kind)) {
      wrapped.push_back({WorkloadOp::Kind::kBegin, 0});
      wrapped.push_back(op);
      wrapped.push_back({WorkloadOp::Kind::kCommit, 0});
    } else {
      wrapped.push_back(op);
    }
  }
  bool planted = false;
  for (WorkloadOp& op : wrapped) {
    if (op.kind == WorkloadOp::Kind::kUpdate) {
      op.kind = WorkloadOp::Kind::kSilentUpdate;
      if (op.value == 0) op.value = 54321;
      planted = true;
      break;
    }
  }
  ASSERT_TRUE(planted);

  Result<ReduceOutcome> reduced = ReduceOpStream(options, wrapped);
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  const ReduceOutcome& outcome = reduced.ValueOrDie();
  EXPECT_LE(outcome.minimal.size(), 6u);
  // The minimal stream is marker-well-formed: normalization is the
  // identity on it (every candidate was normalized before probing).
  const std::vector<WorkloadOp> normalized =
      NormalizeTxnMarkers(outcome.minimal);
  ASSERT_EQ(normalized.size(), outcome.minimal.size());
  for (std::size_t i = 0; i < normalized.size(); ++i) {
    EXPECT_EQ(normalized[i].kind, outcome.minimal[i].kind) << "op " << i;
  }
  // And it still reproduces the failure.
  EXPECT_FALSE(RunOpStream(options, outcome.minimal).ok());
}

TEST(ReduceTest, GeneratedStreamMatchesCrossCheck) {
  // CrossCheck(options) must be exactly GenerateOpStream + RunOpStream:
  // same counts, same comparisons.
  CrossCheckOptions options = ReducerOptions();
  options.steps = 40;
  Result<CrossCheckReport> direct = CrossCheck(options);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  Result<CrossCheckReport> replayed =
      RunOpStream(options, GenerateOpStream(options));
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(direct.ValueOrDie().accesses, replayed.ValueOrDie().accesses);
  EXPECT_EQ(direct.ValueOrDie().update_transactions,
            replayed.ValueOrDie().update_transactions);
  EXPECT_EQ(direct.ValueOrDie().comparisons,
            replayed.ValueOrDie().comparisons);
}

}  // namespace
}  // namespace procsim::audit
