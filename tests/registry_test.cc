#include "proc/registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "proc/update_cache_avm.h"
#include "relational/catalog.h"
#include "relational/executor.h"

namespace procsim::proc {
namespace {

using rel::Conjunction;
using rel::ProcedureQuery;
using rel::Tuple;
using rel::Value;

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest()
      : disk_(4000, &meter_),
        catalog_(&disk_),
        executor_(&catalog_, &meter_),
        strategy_(&catalog_, &executor_, &meter_, 100),
        registry_(&strategy_) {
    rel::Relation::Options options;
    options.tuple_width_bytes = 100;
    options.btree_column = 0;
    table_ = catalog_
                 .CreateRelation("T",
                                 rel::Schema({{"k", rel::ValueType::kInt64},
                                              {"v", rel::ValueType::kInt64}}),
                                 options)
                 .ValueOrDie();
    for (int64_t i = 0; i < 30; ++i) {
      rids_.push_back(
          table_->Insert(Tuple({Value(i), Value(i * 2)})).ValueOrDie());
    }
  }

  ProcedureQuery Range(int64_t lo, int64_t hi) {
    ProcedureQuery query;
    query.base = rel::BaseSelection{"T", lo, hi, Conjunction{}};
    return query;
  }

  CostMeter meter_;
  storage::SimulatedDisk disk_;
  rel::Catalog catalog_;
  rel::Executor executor_;
  UpdateCacheAvmStrategy strategy_;
  ProcedureRegistry registry_;
  rel::Relation* table_ = nullptr;
  std::vector<storage::RecordId> rids_;
};

TEST_F(RegistryTest, MultiQueryProcedureConcatenatesMembers) {
  // §1: a procedure is a *collection* of statements — here two disjoint
  // selections stored under one name.
  ASSERT_TRUE(registry_.Define("both_ends", {Range(0, 4), Range(25, 29)}).ok());
  ASSERT_TRUE(registry_.Prepare().ok());
  EXPECT_EQ(registry_.MemberCount("both_ends"), 2u);
  auto value = registry_.Access("both_ends");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.ValueOrDie().size(), 10u);
  // Concatenation preserves definition order: low range first.
  EXPECT_EQ(value.ValueOrDie().front().value(0).AsInt64(), 0);
  EXPECT_EQ(value.ValueOrDie().back().value(0).AsInt64(), 29);
}

TEST_F(RegistryTest, MembersAreMaintainedIndividually) {
  ASSERT_TRUE(registry_.Define("p", {Range(0, 9), Range(20, 29)}).ok());
  ASSERT_TRUE(registry_.Prepare().ok());
  // Move key 5 to 22: leaves member 0, enters member 1.
  const Tuple old_tuple = table_->Read(rids_[5]).ValueOrDie();
  const Tuple new_tuple({Value(int64_t{22}), Value(int64_t{0})});
  {
    storage::MeteringGuard guard(&disk_);
    ASSERT_TRUE(table_->UpdateInPlace(rids_[5], new_tuple).ok());
  }
  strategy_.OnDelete("T", old_tuple);
  strategy_.OnInsert("T", new_tuple);
  ASSERT_TRUE(strategy_.OnTransactionEnd().ok());
  auto value = registry_.Access("p");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.ValueOrDie().size(), 20u);  // 9 in first + 11 in second
}

TEST_F(RegistryTest, MultipleNamedProcedures) {
  ASSERT_TRUE(registry_.Define("a", {Range(0, 9)}).ok());
  ASSERT_TRUE(registry_.Define("b", {Range(10, 19)}).ok());
  ASSERT_TRUE(registry_.Prepare().ok());
  EXPECT_EQ(registry_.Access("a").ValueOrDie().size(), 10u);
  EXPECT_EQ(registry_.Access("b").ValueOrDie().size(), 10u);
  EXPECT_EQ(registry_.Names(), (std::vector<std::string>{"a", "b"}));
}

TEST_F(RegistryTest, ErrorPaths) {
  EXPECT_EQ(registry_.Define("empty", {}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(registry_.Define("dup", {Range(0, 1)}).ok());
  EXPECT_EQ(registry_.Define("dup", {Range(2, 3)}).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(registry_.Prepare().ok());
  EXPECT_EQ(registry_.Access("missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry_.MemberCount("missing"), 0u);
}

}  // namespace
}  // namespace procsim::proc
