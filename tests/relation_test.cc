#include "relational/relation.h"

#include <gtest/gtest.h>

#include <set>

#include "relational/catalog.h"

namespace procsim::rel {
namespace {

class RelationTest : public ::testing::Test {
 protected:
  RelationTest() : disk_(4000, &meter_), catalog_(&disk_) {}

  Relation* MakeIndexed() {
    Relation::Options options;
    options.tuple_width_bytes = 100;
    options.btree_column = 0;
    options.hash_column = 1;
    options.expected_tuples = 1000;
    Schema schema({Column{"key", ValueType::kInt64},
                   Column{"join", ValueType::kInt64},
                   Column{"payload", ValueType::kInt64}});
    return catalog_.CreateRelation("T", schema, options).ValueOrDie();
  }

  static Tuple Row(int64_t key, int64_t join, int64_t payload = 0) {
    return Tuple({Value(key), Value(join), Value(payload)});
  }

  CostMeter meter_;
  storage::SimulatedDisk disk_;
  Catalog catalog_;
};

TEST_F(RelationTest, InsertReadRoundTrip) {
  Relation* t = MakeIndexed();
  storage::RecordId rid = t->Insert(Row(1, 2, 3)).ValueOrDie();
  EXPECT_TRUE(t->Read(rid).ValueOrDie() == Row(1, 2, 3));
  EXPECT_EQ(t->tuple_count(), 1u);
}

TEST_F(RelationTest, BTreeRangeReturnsKeyOrderedMatches) {
  Relation* t = MakeIndexed();
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(t->Insert(Row(i, i % 10)).ok());
  }
  std::vector<int64_t> keys;
  ASSERT_TRUE(t->BTreeRange(20, 29, [&](storage::RecordId, const Tuple& row) {
    keys.push_back(row.value(0).AsInt64());
    return true;
  }).ok());
  ASSERT_EQ(keys.size(), 10u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], 20 + static_cast<int64_t>(i));
  }
}

TEST_F(RelationTest, HashProbeFindsAllMatches) {
  Relation* t = MakeIndexed();
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(t->Insert(Row(i, i % 3)).ok());
  }
  EXPECT_EQ(t->HashProbe(1).ValueOrDie().size(), 10u);
  EXPECT_TRUE(t->HashProbe(99).ValueOrDie().empty());
}

TEST_F(RelationTest, UpdateInPlaceMaintainsIndexes) {
  Relation* t = MakeIndexed();
  storage::RecordId rid = t->Insert(Row(5, 50)).ValueOrDie();
  ASSERT_TRUE(t->UpdateInPlace(rid, Row(6, 60)).ok());
  // Old keys gone from both indexes.
  int count = 0;
  ASSERT_TRUE(t->BTreeRange(5, 5, [&](storage::RecordId, const Tuple&) {
    ++count;
    return true;
  }).ok());
  EXPECT_EQ(count, 0);
  EXPECT_TRUE(t->HashProbe(50).ValueOrDie().empty());
  // New keys present.
  ASSERT_TRUE(t->BTreeRange(6, 6, [&](storage::RecordId, const Tuple& row) {
    EXPECT_TRUE(row == Row(6, 60));
    ++count;
    return true;
  }).ok());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(t->HashProbe(60).ValueOrDie().size(), 1u);
}

TEST_F(RelationTest, DeleteRemovesFromIndexes) {
  Relation* t = MakeIndexed();
  storage::RecordId rid = t->Insert(Row(5, 50)).ValueOrDie();
  ASSERT_TRUE(t->Delete(rid).ok());
  EXPECT_EQ(t->tuple_count(), 0u);
  EXPECT_TRUE(t->HashProbe(50).ValueOrDie().empty());
  EXPECT_FALSE(t->Read(rid).ok());
}

class RecordingObserver : public UpdateObserver {
 public:
  void OnInsert(const std::string& relation, const Tuple& tuple) override {
    events.push_back("+" + relation + tuple.ToString());
  }
  void OnDelete(const std::string& relation, const Tuple& tuple) override {
    events.push_back("-" + relation + tuple.ToString());
  }
  std::vector<std::string> events;
};

TEST_F(RelationTest, ObserversSeeUpdateAsDeleteThenInsert) {
  Relation* t = MakeIndexed();
  storage::RecordId rid = t->Insert(Row(1, 1)).ValueOrDie();
  RecordingObserver observer;
  t->AddObserver(&observer);
  ASSERT_TRUE(t->UpdateInPlace(rid, Row(2, 2)).ok());
  ASSERT_EQ(observer.events.size(), 2u);
  EXPECT_EQ(observer.events[0][0], '-');
  EXPECT_EQ(observer.events[1][0], '+');
  t->RemoveObserver(&observer);
  ASSERT_TRUE(t->UpdateInPlace(rid, Row(3, 3)).ok());
  EXPECT_EQ(observer.events.size(), 2u);  // detached
}

TEST_F(RelationTest, ScanVisitsEverything) {
  Relation* t = MakeIndexed();
  for (int64_t i = 0; i < 25; ++i) {
    ASSERT_TRUE(t->Insert(Row(i, i)).ok());
  }
  std::set<int64_t> seen;
  ASSERT_TRUE(t->Scan([&](storage::RecordId, const Tuple& row) {
    seen.insert(row.value(0).AsInt64());
    return true;
  }).ok());
  EXPECT_EQ(seen.size(), 25u);
}

TEST_F(RelationTest, BTreeRangeWithoutIndexFails) {
  Relation::Options options;
  Schema schema({Column{"x", ValueType::kInt64}});
  Relation* t = catalog_.CreateRelation("U", schema, options).ValueOrDie();
  EXPECT_FALSE(t->BTreeRange(0, 1, [](storage::RecordId, const Tuple&) {
    return true;
  }).ok());
  EXPECT_FALSE(t->HashProbe(0).ok());
}

TEST_F(RelationTest, CatalogDuplicateAndLookup) {
  MakeIndexed();
  Relation::Options options;
  Schema schema({Column{"x", ValueType::kInt64}});
  EXPECT_EQ(catalog_.CreateRelation("T", schema, options).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog_.GetRelation("T").ok());
  EXPECT_EQ(catalog_.GetRelation("missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog_.RelationNames(), std::vector<std::string>{"T"});
}

TEST_F(RelationTest, ClusteredLoadSpansExpectedPages) {
  // 100-byte tuples, 4000-byte pages: 200 tuples -> 5 heap pages.
  Relation* t = MakeIndexed();
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(t->Insert(Row(i, i)).ok());
  }
  EXPECT_EQ(t->heap_page_count(), 5u);
}

TEST_F(RelationTest, RangeScanChargesClusteredPageCount) {
  Relation* t = MakeIndexed();
  disk_.set_metering_enabled(false);
  for (int64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(t->Insert(Row(i, i)).ok());
  }
  disk_.set_metering_enabled(true);
  meter_.Reset();
  {
    storage::AccessScope scope(&disk_);
    int count = 0;
    ASSERT_TRUE(t->BTreeRange(0, 79, [&](storage::RecordId, const Tuple&) {
      ++count;
      return true;
    }).ok());
    EXPECT_EQ(count, 80);
  }
  // 80 clustered tuples = 2 data pages, plus B-tree descent/leaf pages.
  // Height is 2 at 400 entries (fanout 200); allow a small leaf-chain
  // allowance but require the data-page count to stay clustered.
  EXPECT_LE(meter_.disk_reads(), 2u + 4u);
  EXPECT_GE(meter_.disk_reads(), 2u + 2u);
}

}  // namespace
}  // namespace procsim::rel
