// Direct unit tests of the Rete node types (§2 of the paper), independent
// of the network builder.
#include "rete/node.h"

#include <gtest/gtest.h>

#include <limits>

namespace procsim::rete {
namespace {

using rel::Conjunction;
using rel::PredicateTerm;
using rel::Tuple;
using rel::Value;

Tuple Row(int64_t a, int64_t b) { return Tuple({Value(a), Value(b)}); }
Token Plus(const Tuple& t) { return Token{Token::Tag::kInsert, t}; }
Token Minus(const Tuple& t) { return Token{Token::Tag::kDelete, t}; }

class ReteNodeTest : public ::testing::Test {
 protected:
  ReteNodeTest() : disk_(4000, &meter_) {}
  CostMeter meter_;
  storage::SimulatedDisk disk_;
};

TEST_F(ReteNodeTest, TokenTagsAndDerivation) {
  Token token = Plus(Row(1, 2));
  EXPECT_TRUE(token.is_insert());
  Token derived = token.Derive(Row(3, 4));
  EXPECT_TRUE(derived.is_insert());
  EXPECT_TRUE(derived.tuple == Row(3, 4));
  EXPECT_EQ(Minus(Row(1, 2)).ToString().substr(0, 3), "[- ");
}

TEST_F(ReteNodeTest, TConstFiltersByIntervalAndResidual) {
  TConstNode tconst(0, 10, 19,
                    Conjunction({PredicateTerm{1, rel::CompareOp::kEq,
                                               Value(int64_t{7})}}),
                    &meter_);
  MemoryNode memory(&disk_, 0, /*is_beta=*/false);
  tconst.AddSuccessor(&memory);

  ASSERT_TRUE(tconst.Activate(Plus(Row(15, 7))).ok());  // passes both
  ASSERT_TRUE(tconst.Activate(Plus(Row(25, 7))).ok());  // out of interval
  ASSERT_TRUE(tconst.Activate(Plus(Row(15, 8))).ok());  // residual rejects
  EXPECT_EQ(memory.store().size(), 1u);
  EXPECT_TRUE(memory.store().Contains(Row(15, 7)));
}

TEST_F(ReteNodeTest, TConstChargesScreensPerActivation) {
  TConstNode tconst(0, 0, 100, Conjunction{}, &meter_);
  meter_.Reset();
  ASSERT_TRUE(tconst.Activate(Plus(Row(5, 0))).ok());
  EXPECT_EQ(meter_.screens(), 1u);  // at least one screen per token
}

TEST_F(ReteNodeTest, TConstSignatureDistinguishesStructure) {
  TConstNode a(0, 1, 5, Conjunction{}, &meter_);
  TConstNode b(0, 1, 5, Conjunction{}, &meter_);
  TConstNode c(0, 1, 6, Conjunction{}, &meter_);
  TConstNode d(1, 1, 5, Conjunction{}, &meter_);
  EXPECT_EQ(a.Signature(), b.Signature());
  EXPECT_NE(a.Signature(), c.Signature());
  EXPECT_NE(a.Signature(), d.Signature());
}

TEST_F(ReteNodeTest, MemoryNodeInsertAndDeleteSemantics) {
  MemoryNode memory(&disk_, 0, /*is_beta=*/true);
  ASSERT_TRUE(memory.Activate(Plus(Row(1, 1))).ok());
  ASSERT_TRUE(memory.Activate(Plus(Row(1, 1))).ok());  // duplicate (bag)
  EXPECT_EQ(memory.store().size(), 2u);
  ASSERT_TRUE(memory.Activate(Minus(Row(1, 1))).ok());
  EXPECT_EQ(memory.store().size(), 1u);
  // Removing a token that was never inserted is an error (net-change
  // streams never produce it).
  EXPECT_FALSE(memory.Activate(Minus(Row(9, 9))).ok());
  EXPECT_EQ(memory.Describe(), "beta-memory");
}

TEST_F(ReteNodeTest, AndNodeJoinsFromBothSides) {
  MemoryNode left(&disk_, 0, false);
  MemoryNode right(&disk_, 0, false);
  MemoryNode out(&disk_, 0, true);
  // Join condition: left.$1 = right.$0.
  AndNode join(&left, &right, 1, rel::CompareOp::kEq, 0, &meter_);
  left.AddSuccessor(join.LeftInput());
  right.AddSuccessor(join.RightInput());
  join.AddSuccessor(&out);
  left.mutable_store()->EnsureProbeIndex(1);
  right.mutable_store()->EnsureProbeIndex(0);

  // Left activation with empty right: nothing emitted.
  ASSERT_TRUE(left.Activate(Plus(Row(1, 7))).ok());
  EXPECT_EQ(out.store().size(), 0u);
  // Right activation joins with the stored left tuple.
  ASSERT_TRUE(right.Activate(Plus(Row(7, 100))).ok());
  ASSERT_EQ(out.store().size(), 1u);
  const Tuple joined = out.store().SnapshotForTesting()[0];
  ASSERT_EQ(joined.arity(), 4u);
  EXPECT_EQ(joined.value(0).AsInt64(), 1);   // left first
  EXPECT_EQ(joined.value(2).AsInt64(), 7);   // then right
  // Another left activation now joins against the stored right tuple.
  ASSERT_TRUE(left.Activate(Plus(Row(2, 7))).ok());
  EXPECT_EQ(out.store().size(), 2u);
  // Deletes flow with the same pairing.
  ASSERT_TRUE(left.Activate(Minus(Row(1, 7))).ok());
  EXPECT_EQ(out.store().size(), 1u);
}

TEST_F(ReteNodeTest, AndNodeDirectActivationIsAnError) {
  MemoryNode left(&disk_, 0, false);
  MemoryNode right(&disk_, 0, false);
  AndNode join(&left, &right, 0, rel::CompareOp::kEq, 0, &meter_);
  EXPECT_EQ(join.Activate(Plus(Row(1, 1))).code(), StatusCode::kInternal);
}

TEST_F(ReteNodeTest, AndNodeNonEquiOperatorScansOpposite) {
  MemoryNode left(&disk_, 0, false);
  MemoryNode right(&disk_, 0, false);
  MemoryNode out(&disk_, 0, true);
  // left.$0 < right.$0 — no probe index usable, falls back to a scan.
  AndNode join(&left, &right, 0, rel::CompareOp::kLt, 0, &meter_);
  left.AddSuccessor(join.LeftInput());
  right.AddSuccessor(join.RightInput());
  join.AddSuccessor(&out);
  ASSERT_TRUE(right.Activate(Plus(Row(10, 0))).ok());
  ASSERT_TRUE(right.Activate(Plus(Row(1, 0))).ok());
  ASSERT_TRUE(left.Activate(Plus(Row(5, 0))).ok());
  // 5 < 10 matches; 5 < 1 does not.
  ASSERT_EQ(out.store().size(), 1u);
  EXPECT_EQ(out.store().SnapshotForTesting()[0].value(2).AsInt64(), 10);
}

TEST_F(ReteNodeTest, DescribeStringsAreInformative) {
  TConstNode tconst(
      2, 5, 9,
      Conjunction({PredicateTerm{0, rel::CompareOp::kNe, Value(int64_t{3})}}),
      &meter_);
  EXPECT_NE(tconst.Describe().find("$2 in [5,9]"), std::string::npos);
  EXPECT_NE(tconst.Describe().find("!= 3"), std::string::npos);
  MemoryNode left(&disk_, 0, false);
  MemoryNode right(&disk_, 0, false);
  AndNode join(&left, &right, 1, rel::CompareOp::kEq, 0, &meter_);
  EXPECT_NE(join.Describe().find("left.$1 = right.$0"), std::string::npos);
}

}  // namespace
}  // namespace procsim::rete
