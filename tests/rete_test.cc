#include "rete/network.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "relational/catalog.h"
#include "relational/executor.h"
#include "util/rng.h"

namespace procsim::rete {
namespace {

using rel::Conjunction;
using rel::JoinStage;
using rel::PredicateTerm;
using rel::ProcedureQuery;
using rel::Tuple;
using rel::Value;

std::vector<std::string> Canon(const std::vector<Tuple>& tuples) {
  std::vector<std::string> out;
  for (const Tuple& t : tuples) out.push_back(t.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

// The paper's running example (figure 1): EMP/DEPT with the PROGS1 and
// CLERKS1 views sharing the "DEPT.floor = 1" subexpression — realized here
// with the join-stage residual on DEPT, plus R1/R2/R3-style schemas for the
// model-2 structure of figure 16.
class ReteTest : public ::testing::Test {
 protected:
  ReteTest()
      : disk_(4000, &meter_), catalog_(&disk_), executor_(&catalog_, &meter_) {
    rel::Relation::Options r1_options;
    r1_options.tuple_width_bytes = 100;
    r1_options.btree_column = 0;
    r1_ = catalog_
              .CreateRelation("R1",
                              rel::Schema({{"key", rel::ValueType::kInt64},
                                           {"a", rel::ValueType::kInt64}}),
                              r1_options)
              .ValueOrDie();
    rel::Relation::Options r2_options;
    r2_options.tuple_width_bytes = 100;
    r2_options.hash_column = 0;
    r2_ = catalog_
              .CreateRelation("R2",
                              rel::Schema({{"b", rel::ValueType::kInt64},
                                           {"c", rel::ValueType::kInt64},
                                           {"sel2", rel::ValueType::kInt64}}),
                              r2_options)
              .ValueOrDie();
    rel::Relation::Options r3_options;
    r3_options.tuple_width_bytes = 100;
    r3_options.hash_column = 0;
    r3_ = catalog_
              .CreateRelation("R3",
                              rel::Schema({{"d", rel::ValueType::kInt64},
                                           {"p", rel::ValueType::kInt64}}),
                              r3_options)
              .ValueOrDie();
    for (int64_t i = 0; i < 50; ++i) {
      rids_.push_back(
          r1_->Insert(Tuple({Value(i), Value(i % 5)})).ValueOrDie());
    }
    for (int64_t i = 0; i < 5; ++i) {
      (void)r2_->Insert(Tuple({Value(i), Value(i % 3), Value(i % 2)}));
    }
    for (int64_t i = 0; i < 3; ++i) {
      (void)r3_->Insert(Tuple({Value(i), Value(i * 7)}));
    }
  }

  ProcedureQuery P1(int64_t lo, int64_t hi) {
    ProcedureQuery query;
    query.base = rel::BaseSelection{"R1", lo, hi, Conjunction{}};
    return query;
  }

  ProcedureQuery P2Model1(int64_t lo, int64_t hi, int64_t sel2) {
    ProcedureQuery query = P1(lo, hi);
    JoinStage stage;
    stage.relation = "R2";
    stage.probe_column = 1;
    stage.residual =
        Conjunction({PredicateTerm{2, rel::CompareOp::kEq, Value(sel2)}});
    query.joins.push_back(stage);
    return query;
  }

  ProcedureQuery P2Model2(int64_t lo, int64_t hi, int64_t sel2) {
    ProcedureQuery query = P2Model1(lo, hi, sel2);
    JoinStage stage;
    stage.relation = "R3";
    stage.probe_column = 3;  // R2.c within R1(2) ++ R2(3)
    query.joins.push_back(stage);
    return query;
  }

  void FeedUpdate(std::size_t index, ReteNetwork* network, int64_t new_key,
                  int64_t new_a) {
    const Tuple old_tuple = r1_->Read(rids_[index]).ValueOrDie();
    const Tuple new_tuple({Value(new_key), Value(new_a)});
    ASSERT_TRUE(r1_->UpdateInPlace(rids_[index], new_tuple).ok());
    ASSERT_TRUE(network->OnDelete("R1", old_tuple).ok());
    ASSERT_TRUE(network->OnInsert("R1", new_tuple).ok());
  }

  CostMeter meter_;
  storage::SimulatedDisk disk_;
  rel::Catalog catalog_;
  rel::Executor executor_;
  rel::Relation* r1_ = nullptr;
  rel::Relation* r2_ = nullptr;
  rel::Relation* r3_ = nullptr;
  std::vector<storage::RecordId> rids_;
};

TEST_F(ReteTest, P1MemoryHoldsSelectionResult) {
  ReteNetwork network(&catalog_, &meter_, 100);
  auto memory = network.AddProcedure(P1(10, 19));
  ASSERT_TRUE(memory.ok()) << memory.status().ToString();
  EXPECT_EQ(memory.ValueOrDie()->store().size(), 10u);
  EXPECT_FALSE(memory.ValueOrDie()->is_beta());
  EXPECT_EQ(network.stats().tconst_nodes, 1u);
  EXPECT_EQ(network.stats().alpha_memories, 1u);
  EXPECT_EQ(network.stats().and_nodes, 0u);
}

TEST_F(ReteTest, P2Model1StructureMatchesFigure3) {
  ReteNetwork network(&catalog_, &meter_, 100);
  auto memory = network.AddProcedure(P2Model1(0, 9, 1));
  ASSERT_TRUE(memory.ok()) << memory.status().ToString();
  // Two t-const chains (R1 selection, R2 selection), one and-node, one
  // β-memory holding the join result.
  EXPECT_EQ(network.stats().tconst_nodes, 2u);
  EXPECT_EQ(network.stats().alpha_memories, 2u);
  EXPECT_EQ(network.stats().and_nodes, 1u);
  EXPECT_EQ(network.stats().beta_memories, 1u);
  EXPECT_TRUE(memory.ValueOrDie()->is_beta());
  EXPECT_EQ(Canon(memory.ValueOrDie()->store().SnapshotForTesting()),
            Canon(executor_.Execute(P2Model1(0, 9, 1)).ValueOrDie()));
}

TEST_F(ReteTest, P2Model2IsRightDeep) {
  // Figure 16: the right input of the top and-node is a β-memory holding
  // σ_sel2(R2) ⋈ R3.
  ReteNetwork network(&catalog_, &meter_, 100);
  auto memory = network.AddProcedure(P2Model2(0, 9, 1));
  ASSERT_TRUE(memory.ok()) << memory.status().ToString();
  EXPECT_EQ(network.stats().tconst_nodes, 3u);  // R1, R2, R3 selections
  EXPECT_EQ(network.stats().alpha_memories, 3u);
  EXPECT_EQ(network.stats().and_nodes, 2u);
  EXPECT_EQ(network.stats().beta_memories, 2u);  // inner join + result
  EXPECT_EQ(Canon(memory.ValueOrDie()->store().SnapshotForTesting()),
            Canon(executor_.Execute(P2Model2(0, 9, 1)).ValueOrDie()));
}

TEST_F(ReteTest, SharedSelectionSubexpressionIsReused) {
  // A P2 procedure whose C_f(R1) equals a P1 procedure's query shares the
  // t-const chain and α-memory (the paper's SF mechanism).
  ReteNetwork network(&catalog_, &meter_, 100);
  ASSERT_TRUE(network.AddProcedure(P1(10, 19)).ok());
  ASSERT_TRUE(network.AddProcedure(P2Model1(10, 19, 1)).ok());
  EXPECT_EQ(network.stats().tconst_nodes, 2u);  // R1 shared + R2's own
  EXPECT_EQ(network.stats().alpha_memories, 2u);
  EXPECT_GE(network.stats().shared_subexpression_hits, 1u);
  // A P2 with a different base interval creates its own R1 chain but still
  // shares the identical R2 selection subexpression.
  ASSERT_TRUE(network.AddProcedure(P2Model1(20, 29, 1)).ok());
  EXPECT_EQ(network.stats().tconst_nodes, 3u);
  EXPECT_GE(network.stats().shared_subexpression_hits, 2u);
}

TEST_F(ReteTest, IdenticalJoinTailIsShared) {
  ReteNetwork network(&catalog_, &meter_, 100);
  ASSERT_TRUE(network.AddProcedure(P2Model2(0, 9, 1)).ok());
  const std::size_t tails_before = network.stats().beta_memories;
  // Same R2/R3 tail, different base selection: inner β-memory reused.
  ASSERT_TRUE(network.AddProcedure(P2Model2(20, 29, 1)).ok());
  EXPECT_EQ(network.stats().beta_memories, tails_before + 1);  // result only
  EXPECT_GE(network.stats().shared_subexpression_hits, 1u);
}

TEST_F(ReteTest, InsertTokenFlowsToMemories) {
  ReteNetwork network(&catalog_, &meter_, 100);
  auto p1 = network.AddProcedure(P1(10, 19));
  auto p2 = network.AddProcedure(P2Model1(10, 19, 1));
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  const std::size_t before1 = p1.ValueOrDie()->store().size();
  const std::size_t before2 = p2.ValueOrDie()->store().size();
  // Move a tuple into the interval, joining R2.b = 1 (sel2 of b=1 is 1 ✓).
  FeedUpdate(30, &network, 15, 1);
  EXPECT_EQ(p1.ValueOrDie()->store().size(), before1 + 1);
  EXPECT_EQ(p2.ValueOrDie()->store().size(), before2 + 1);
}

TEST_F(ReteTest, DeleteTokenRemovesDerivedTuples) {
  ReteNetwork network(&catalog_, &meter_, 100);
  auto p2 = network.AddProcedure(P2Model1(10, 19, 1));
  ASSERT_TRUE(p2.ok());
  const std::size_t before = p2.ValueOrDie()->store().size();
  ASSERT_GT(before, 0u);
  // Move a tuple that is inside the interval out of it.
  FeedUpdate(11, &network, 45, 0);
  // Key 11 had a = 1 (11 % 5); if it joined with sel2=1 it is now gone.
  EXPECT_EQ(Canon(p2.ValueOrDie()->store().SnapshotForTesting()),
            Canon(executor_.Execute(P2Model1(10, 19, 1)).ValueOrDie()));
}

TEST_F(ReteTest, TokensOutsideEveryIntervalAreFreeAndIgnored) {
  ReteNetwork network(&catalog_, &meter_, 100);
  ASSERT_TRUE(network.AddProcedure(P1(10, 19)).ok());
  meter_.Reset();
  ASSERT_TRUE(
      network.OnInsert("R1", Tuple({Value(int64_t{45}), Value(int64_t{0})}))
          .ok());
  // The root's discrimination index rejects it without charging anything.
  EXPECT_DOUBLE_EQ(meter_.total_ms(), 0.0);
}

TEST_F(ReteTest, UnknownRelationTokensIgnored) {
  ReteNetwork network(&catalog_, &meter_, 100);
  ASSERT_TRUE(network.AddProcedure(P1(0, 5)).ok());
  EXPECT_TRUE(network.OnInsert("ZZZ", Tuple({Value(int64_t{1})})).ok());
}

TEST_F(ReteTest, RandomStreamKeepsAllMemoriesConsistent) {
  ReteNetwork network(&catalog_, &meter_, 100);
  std::vector<ProcedureQuery> queries{P1(5, 24), P2Model1(5, 24, 1),
                                      P2Model2(5, 24, 0), P2Model2(30, 44, 1)};
  std::vector<MemoryNode*> memories;
  for (const auto& query : queries) {
    auto memory = network.AddProcedure(query);
    ASSERT_TRUE(memory.ok()) << memory.status().ToString();
    memories.push_back(memory.ValueOrDie());
  }
  Rng rng(31);
  for (int step = 0; step < 150; ++step) {
    const std::size_t pick = rng.Uniform(rids_.size());
    FeedUpdate(pick, &network, static_cast<int64_t>(rng.Uniform(50)),
               static_cast<int64_t>(rng.Uniform(5)));
    if (step % 30 == 29) {
      for (std::size_t i = 0; i < queries.size(); ++i) {
        ASSERT_EQ(Canon(memories[i]->store().SnapshotForTesting()),
                  Canon(executor_.Execute(queries[i]).ValueOrDie()))
            << "memory " << i << " diverged at step " << step;
      }
    }
  }
}

TEST_F(ReteTest, LeftDeepShapeMaintainsCorrectlyButSharesNothing) {
  ReteNetwork right(&catalog_, &meter_, 100, ReteNetwork::JoinShape::kRightDeep);
  ReteNetwork left(&catalog_, &meter_, 100, ReteNetwork::JoinShape::kLeftDeep);
  auto r_mem = right.AddProcedure(P2Model2(5, 24, 1));
  auto l_mem = left.AddProcedure(P2Model2(5, 24, 1));
  ASSERT_TRUE(r_mem.ok());
  ASSERT_TRUE(l_mem.ok()) << l_mem.status().ToString();
  // Identical contents, different topology.
  EXPECT_EQ(Canon(l_mem.ValueOrDie()->store().SnapshotForTesting()),
            Canon(r_mem.ValueOrDie()->store().SnapshotForTesting()));
  EXPECT_EQ(left.stats().and_nodes, 2u);
  EXPECT_EQ(left.stats().beta_memories, 2u);

  // Both stay consistent under updates, but left-deep charges more I/O per
  // token (intermediate β refresh + two probes instead of one).
  CostMeter right_meter;
  CostMeter left_meter;
  // Feed the same in-range token to both networks with fresh meters.
  const Tuple probe_old = r1_->Read(rids_[10]).ValueOrDie();
  const Tuple probe_new({Value(int64_t{10}), Value(int64_t{1})});
  ASSERT_TRUE(r1_->UpdateInPlace(rids_[10], probe_new).ok());
  meter_.Reset();
  ASSERT_TRUE(right.OnDelete("R1", probe_old).ok());
  ASSERT_TRUE(right.OnInsert("R1", probe_new).ok());
  const double right_cost = meter_.total_ms();
  meter_.Reset();
  ASSERT_TRUE(left.OnDelete("R1", probe_old).ok());
  ASSERT_TRUE(left.OnInsert("R1", probe_new).ok());
  const double left_cost = meter_.total_ms();
  EXPECT_GE(left_cost, right_cost);
  EXPECT_EQ(Canon(l_mem.ValueOrDie()->store().SnapshotForTesting()),
            Canon(executor_.Execute(P2Model2(5, 24, 1)).ValueOrDie()));
  EXPECT_EQ(Canon(r_mem.ValueOrDie()->store().SnapshotForTesting()),
            Canon(executor_.Execute(P2Model2(5, 24, 1)).ValueOrDie()));
}

TEST_F(ReteTest, LeftDeepSharesOnlySelections) {
  ReteNetwork network(&catalog_, &meter_, 100,
                      ReteNetwork::JoinShape::kLeftDeep);
  ASSERT_TRUE(network.AddProcedure(P2Model2(0, 9, 1)).ok());
  const auto before = network.stats();
  // Same tail spec, different base: selections shared, joins duplicated.
  ASSERT_TRUE(network.AddProcedure(P2Model2(20, 29, 1)).ok());
  EXPECT_EQ(network.stats().tconst_nodes, before.tconst_nodes + 1);
  EXPECT_EQ(network.stats().and_nodes, before.and_nodes + 2);
  EXPECT_EQ(network.stats().beta_memories, before.beta_memories + 2);
}

TEST_F(ReteTest, TokensFromInnerRelationsPropagateThroughRightInputs) {
  // The paper's workload only updates R1, but the network is general: an
  // R2 change must flow through the and-node's *right* input, join against
  // the left α-memory, and patch every downstream memory.
  ReteNetwork network(&catalog_, &meter_, 100);
  auto m1 = network.AddProcedure(P2Model1(10, 19, 1));
  auto m2 = network.AddProcedure(P2Model2(10, 19, 1));
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());

  // Change R2 tuple b=1: flip its sel2 from 1 to 0 (leaves both views) and
  // back (re-enters).
  auto r2_rows = [&] {
    std::vector<std::pair<storage::RecordId, Tuple>> rows;
    (void)r2_->Scan([&](storage::RecordId rid, const Tuple& row) {
      rows.emplace_back(rid, row);
      return true;
    });
    return rows;
  }();
  for (auto& [rid, row] : r2_rows) {
    if (row.value(0).AsInt64() != 1) continue;
    const Tuple flipped({row.value(0), row.value(1), Value(int64_t{0})});
    ASSERT_TRUE(r2_->UpdateInPlace(rid, flipped).ok());
    ASSERT_TRUE(network.OnDelete("R2", row).ok());
    ASSERT_TRUE(network.OnInsert("R2", flipped).ok());
    EXPECT_EQ(Canon(m1.ValueOrDie()->store().SnapshotForTesting()),
              Canon(executor_.Execute(P2Model1(10, 19, 1)).ValueOrDie()));
    EXPECT_EQ(Canon(m2.ValueOrDie()->store().SnapshotForTesting()),
              Canon(executor_.Execute(P2Model2(10, 19, 1)).ValueOrDie()));
    // Flip back.
    ASSERT_TRUE(r2_->UpdateInPlace(rid, row).ok());
    ASSERT_TRUE(network.OnDelete("R2", flipped).ok());
    ASSERT_TRUE(network.OnInsert("R2", row).ok());
    EXPECT_EQ(Canon(m2.ValueOrDie()->store().SnapshotForTesting()),
              Canon(executor_.Execute(P2Model2(10, 19, 1)).ValueOrDie()));
  }
}

TEST_F(ReteTest, TokensFromDeepestRelationPropagate) {
  // An R3 change must cascade: inner and-node right input -> inner beta ->
  // top and-node right input -> result.
  ReteNetwork network(&catalog_, &meter_, 100);
  auto memory = network.AddProcedure(P2Model2(0, 49, 1));
  ASSERT_TRUE(memory.ok());
  const Tuple extra({Value(int64_t{1}), Value(int64_t{999})});
  ASSERT_TRUE(r3_->Insert(extra).ok());
  ASSERT_TRUE(network.OnInsert("R3", extra).ok());
  EXPECT_EQ(Canon(memory.ValueOrDie()->store().SnapshotForTesting()),
            Canon(executor_.Execute(P2Model2(0, 49, 1)).ValueOrDie()));
  // And remove it again.
  // (Relation::Delete needs the rid; simplest is to find it via scan.)
  storage::RecordId rid;
  bool found = false;
  (void)r3_->Scan([&](storage::RecordId r, const Tuple& row) {
    if (row == extra) {
      rid = r;
      found = true;
      return false;
    }
    return true;
  });
  ASSERT_TRUE(found);
  ASSERT_TRUE(r3_->Delete(rid).ok());
  ASSERT_TRUE(network.OnDelete("R3", extra).ok());
  EXPECT_EQ(Canon(memory.ValueOrDie()->store().SnapshotForTesting()),
            Canon(executor_.Execute(P2Model2(0, 49, 1)).ValueOrDie()));
}

TEST_F(ReteTest, DotExportRendersStructure) {
  ReteNetwork network(&catalog_, &meter_, 100);
  ASSERT_TRUE(network.AddProcedure(P1(10, 19)).ok());
  ASSERT_TRUE(network.AddProcedure(P2Model2(10, 19, 1)).ok());
  const std::string dot = network.ToDot();
  EXPECT_NE(dot.find("digraph rete"), std::string::npos);
  EXPECT_NE(dot.find("root"), std::string::npos);
  EXPECT_NE(dot.find("t-const"), std::string::npos);
  EXPECT_NE(dot.find("alpha-memory"), std::string::npos);
  EXPECT_NE(dot.find("beta-memory"), std::string::npos);
  EXPECT_NE(dot.find("and("), std::string::npos);
  // Root dispatches R1 tokens to the (shared) base selection chain.
  EXPECT_NE(dot.find("label=\"R1\""), std::string::npos);
  // Left/right input labels appear.
  EXPECT_NE(dot.find("label=\"L\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"R\""), std::string::npos);
}

TEST_F(ReteTest, MaintenanceChargesScreenAndRefreshCosts) {
  ReteNetwork network(&catalog_, &meter_, 100);
  ASSERT_TRUE(network.AddProcedure(P1(10, 19)).ok());
  meter_.Reset();
  ASSERT_TRUE(
      network.OnInsert("R1", Tuple({Value(int64_t{15}), Value(int64_t{1})}))
          .ok());
  // One screen (t-const), one page read + write (α-memory refresh).
  EXPECT_EQ(meter_.screens(), 1u);
  EXPECT_GE(meter_.disk_writes(), 1u);
}

}  // namespace
}  // namespace procsim::rete
