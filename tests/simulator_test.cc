#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "cost/model.h"

namespace procsim::sim {
namespace {

using cost::ProcModel;
using cost::Strategy;

// A small parameterization that still exercises joins, sharing and
// multi-page objects but runs fast.
cost::Params SmallParams() {
  cost::Params p;
  p.N = 2000;
  p.N1 = 10;
  p.N2 = 10;
  p.k = 20;
  p.q = 20;
  p.l = 5;
  p.f = 0.01;   // 20-tuple P1 objects
  p.f2 = 0.2;
  p.SF = 0.5;
  return p;
}

class SimulatorEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Strategy, ProcModel>> {};

// Every strategy must return exactly the value a from-scratch recomputation
// would, at every access, under a random update stream.
TEST_P(SimulatorEquivalenceTest, ResultsMatchRecomputation) {
  auto [strategy, model] = GetParam();
  Simulator::Options options;
  options.params = SmallParams();
  options.model = model;
  options.seed = 7;
  options.verify_results = true;
  Result<SimulationResult> result = Simulator::Run(strategy, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().verification_failures, 0u);
  EXPECT_EQ(result.ValueOrDie().queries, 20u);
  EXPECT_EQ(result.ValueOrDie().update_transactions, 20u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesBothModels, SimulatorEquivalenceTest,
    ::testing::Combine(::testing::Values(Strategy::kAlwaysRecompute,
                                         Strategy::kCacheInvalidate,
                                         Strategy::kUpdateCacheAvm,
                                         Strategy::kUpdateCacheRvm),
                       ::testing::Values(ProcModel::kModel1,
                                         ProcModel::kModel2)));

TEST(SimulatorTest, DeterministicForSameSeed) {
  Simulator::Options options;
  options.params = SmallParams();
  options.seed = 11;
  Result<SimulationResult> a =
      Simulator::Run(Strategy::kCacheInvalidate, options);
  Result<SimulationResult> b =
      Simulator::Run(Strategy::kCacheInvalidate, options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_DOUBLE_EQ(a.ValueOrDie().total_ms, b.ValueOrDie().total_ms);
  EXPECT_EQ(a.ValueOrDie().disk_reads, b.ValueOrDie().disk_reads);
}

TEST(SimulatorTest, CachedStrategiesBeatRecomputeAtLowUpdateRate) {
  Simulator::Options options;
  options.params = SmallParams();
  options.params.k = 2;   // P ≈ 0.09
  options.params.q = 20;
  options.seed = 3;
  double costs[3];
  int i = 0;
  for (Strategy s : {Strategy::kAlwaysRecompute, Strategy::kCacheInvalidate,
                     Strategy::kUpdateCacheAvm}) {
    Result<SimulationResult> r = Simulator::Run(s, options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    costs[i++] = r.ValueOrDie().avg_ms_per_query;
  }
  EXPECT_LT(costs[1], costs[0]);  // CI beats AR
  EXPECT_LT(costs[2], costs[0]);  // AVM beats AR
}

}  // namespace
}  // namespace procsim::sim
