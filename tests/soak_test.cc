// Long-horizon randomized soak: every strategy (including the extensions)
// is driven through the same seeded workloads with result verification at
// every access, across several seeds and both procedure models.  This is
// the repository's strongest end-to-end invariant: no strategy may ever
// serve a value different from a from-scratch recomputation.
#include <gtest/gtest.h>

#include <memory>

#include "proc/hybrid.h"
#include "proc/update_cache_adaptive.h"
#include "proc/update_cache_rvm.h"
#include "sim/simulator.h"

namespace procsim::sim {
namespace {

using cost::ProcModel;
using cost::Strategy;

cost::Params SoakParams() {
  cost::Params p;
  p.N = 3000;
  p.N1 = 12;
  p.N2 = 12;
  p.k = 40;
  p.q = 40;
  p.l = 8;
  p.f = 0.008;
  p.f2 = 0.3;
  p.SF = 0.6;
  p.Z = 0.1;  // skewed accesses
  return p;
}

struct SoakCase {
  uint64_t seed;
  ProcModel model;
};

class SoakTest : public ::testing::TestWithParam<SoakCase> {};

TEST_P(SoakTest, BuiltinStrategiesNeverServeStaleResults) {
  for (Strategy strategy :
       {Strategy::kAlwaysRecompute, Strategy::kCacheInvalidate,
        Strategy::kUpdateCacheAvm, Strategy::kUpdateCacheRvm}) {
    Simulator::Options options;
    options.params = SoakParams();
    options.model = GetParam().model;
    options.seed = GetParam().seed;
    options.verify_results = true;
    Result<SimulationResult> result = Simulator::Run(strategy, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.ValueOrDie().verification_failures, 0u)
        << cost::StrategyName(strategy) << " seed " << GetParam().seed;
  }
}

TEST_P(SoakTest, ExtensionStrategiesNeverServeStaleResults) {
  Simulator::Options options;
  options.params = SoakParams();
  options.model = GetParam().model;
  options.seed = GetParam().seed;
  options.verify_results = true;

  for (int variant = 0; variant < 3; ++variant) {
    Result<SimulationResult> result = Simulator::RunWithFactory(
        [&](Database* db) -> std::unique_ptr<proc::Strategy> {
          const auto bytes = static_cast<std::size_t>(options.params.S);
          switch (variant) {
            case 0:
              return std::make_unique<proc::UpdateCacheAdaptiveStrategy>(
                  db->catalog.get(), db->executor.get(), &db->meter, bytes,
                  0.3, 3);
            case 1:
              return std::make_unique<proc::HybridStrategy>(
                  db->catalog.get(), db->executor.get(), &db->meter, bytes,
                  options.params, options.model, 1.25);
            default:
              return std::make_unique<proc::UpdateCacheRvmStrategy>(
                  db->catalog.get(), db->executor.get(), &db->meter, bytes,
                  rete::ReteNetwork::JoinShape::kLeftDeep);
          }
        },
        options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.ValueOrDie().verification_failures, 0u)
        << "variant " << variant << " seed " << GetParam().seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModels, SoakTest,
    ::testing::Values(SoakCase{101, ProcModel::kModel1},
                      SoakCase{202, ProcModel::kModel1},
                      SoakCase{303, ProcModel::kModel2},
                      SoakCase{404, ProcModel::kModel2}),
    [](const ::testing::TestParamInfo<SoakCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_model" +
             std::to_string(static_cast<int>(info.param.model));
    });

}  // namespace
}  // namespace procsim::sim
