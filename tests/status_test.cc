#include "util/status.h"

#include <gtest/gtest.h>

namespace procsim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  const Status status = Status::NotFound("missing widget");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "missing widget");
  EXPECT_EQ(status.ToString(), "NotFound: missing widget");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> result(std::string("payload"));
  std::string taken = result.TakeValueOrDie();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, ImplicitConversionFromValueAndStatus) {
  auto make = [](bool succeed) -> Result<std::string> {
    if (succeed) return std::string("yes");
    return Status::Internal("no");
  };
  EXPECT_TRUE(make(true).ok());
  EXPECT_FALSE(make(false).ok());
}

TEST(ReturnIfErrorTest, PropagatesAndPassesThrough) {
  auto fails = []() -> Status { return Status::OutOfRange("boom"); };
  auto passes = []() -> Status { return Status::OK(); };
  auto wrapper = [&](bool fail) -> Status {
    PROCSIM_RETURN_IF_ERROR(passes());
    if (fail) {
      PROCSIM_RETURN_IF_ERROR(fails());
    }
    return Status::OK();
  };
  EXPECT_TRUE(wrapper(false).ok());
  EXPECT_EQ(wrapper(true).code(), StatusCode::kOutOfRange);
}

TEST(StatusDeathTest, ValueOrDieOnErrorAborts) {
  Result<int> result(Status::Internal("fatal"));
  EXPECT_DEATH({ (void)result.ValueOrDie(); }, "Internal: fatal");
}

TEST(CheckDeathTest, FailedCheckPrintsConditionAndMessage) {
  EXPECT_DEATH({ PROCSIM_CHECK(1 == 2) << "context " << 42; },
               "CHECK failed: 1 == 2.*context 42");
}

}  // namespace
}  // namespace procsim
