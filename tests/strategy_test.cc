#include <gtest/gtest.h>

#include <algorithm>

#include "proc/always_recompute.h"
#include "proc/cache_invalidate.h"
#include "proc/update_cache_avm.h"
#include "proc/update_cache_rvm.h"
#include "relational/catalog.h"
#include "relational/executor.h"

namespace procsim::proc {
namespace {

using rel::Conjunction;
using rel::JoinStage;
using rel::ProcedureQuery;
using rel::Tuple;
using rel::Value;

std::vector<std::string> Canon(const std::vector<Tuple>& tuples) {
  std::vector<std::string> out;
  for (const Tuple& t : tuples) out.push_back(t.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

class StrategyTest : public ::testing::Test {
 protected:
  StrategyTest()
      : disk_(4000, &meter_), catalog_(&disk_), executor_(&catalog_, &meter_) {
    rel::Relation::Options base_options;
    base_options.tuple_width_bytes = 100;
    base_options.btree_column = 0;
    base_ = catalog_
                .CreateRelation("R1",
                                rel::Schema({{"key", rel::ValueType::kInt64},
                                             {"a", rel::ValueType::kInt64}}),
                                base_options)
                .ValueOrDie();
    rel::Relation::Options inner_options;
    inner_options.tuple_width_bytes = 100;
    inner_options.hash_column = 0;
    inner_ = catalog_
                 .CreateRelation("R2",
                                 rel::Schema({{"b", rel::ValueType::kInt64},
                                              {"v", rel::ValueType::kInt64}}),
                                 inner_options)
                 .ValueOrDie();
    for (int64_t i = 0; i < 40; ++i) {
      rids_.push_back(
          base_->Insert(Tuple({Value(i), Value(i % 4)})).ValueOrDie());
    }
    for (int64_t i = 0; i < 4; ++i) {
      (void)inner_->Insert(Tuple({Value(i), Value(i * 10)}));
    }
  }

  DatabaseProcedure MakeP1(ProcId id, int64_t lo, int64_t hi) {
    DatabaseProcedure procedure;
    procedure.id = id;
    procedure.name = "P1_" + std::to_string(id);
    procedure.query.base = rel::BaseSelection{"R1", lo, hi, Conjunction{}};
    return procedure;
  }

  DatabaseProcedure MakeP2(ProcId id, int64_t lo, int64_t hi) {
    DatabaseProcedure procedure = MakeP1(id, lo, hi);
    procedure.name = "P2_" + std::to_string(id);
    JoinStage stage;
    stage.relation = "R2";
    stage.probe_column = 1;
    procedure.query.joins.push_back(stage);
    return procedure;
  }

  // Applies one in-place update and notifies the strategy the way the
  // simulator does: the base-table write itself is un-metered (identical
  // across strategies and excluded by the paper's analysis); only the
  // strategy's reaction is charged.
  void UpdateTuple(Strategy* strategy, std::size_t index, int64_t new_key,
                   int64_t new_a) {
    const Tuple new_tuple({Value(new_key), Value(new_a)});
    Tuple old_tuple;
    {
      storage::MeteringGuard guard(&disk_);
      old_tuple = base_->Read(rids_[index]).ValueOrDie();
      ASSERT_TRUE(base_->UpdateInPlace(rids_[index], new_tuple).ok());
    }
    strategy->OnDelete("R1", old_tuple);
    strategy->OnInsert("R1", new_tuple);
  }

  std::vector<Tuple> Recompute(const ProcedureQuery& query) {
    storage::MeteringGuard guard(&disk_);
    return executor_.Execute(query).ValueOrDie();
  }

  CostMeter meter_;
  storage::SimulatedDisk disk_;
  rel::Catalog catalog_;
  rel::Executor executor_;
  rel::Relation* base_ = nullptr;
  rel::Relation* inner_ = nullptr;
  std::vector<storage::RecordId> rids_;
};

TEST_F(StrategyTest, AlwaysRecomputeReflectsUpdatesImmediately) {
  AlwaysRecomputeStrategy strategy(&catalog_, &executor_, &meter_, 100);
  ASSERT_TRUE(strategy.AddProcedure(MakeP1(0, 10, 19)).ok());
  ASSERT_TRUE(strategy.Prepare().ok());
  EXPECT_EQ(strategy.Access(0).ValueOrDie().size(), 10u);
  UpdateTuple(&strategy, 30, 15, 0);  // moves key 30 -> 15, into range
  EXPECT_EQ(strategy.Access(0).ValueOrDie().size(), 11u);
}

TEST_F(StrategyTest, AlwaysRecomputeUnknownProcedure) {
  AlwaysRecomputeStrategy strategy(&catalog_, &executor_, &meter_, 100);
  ASSERT_TRUE(strategy.Prepare().ok());
  EXPECT_EQ(strategy.Access(3).status().code(), StatusCode::kNotFound);
}

TEST_F(StrategyTest, ProcedureIdsMustBeDense) {
  AlwaysRecomputeStrategy strategy(&catalog_, &executor_, &meter_, 100);
  EXPECT_FALSE(strategy.AddProcedure(MakeP1(5, 0, 1)).ok());
}

TEST_F(StrategyTest, CacheInvalidateServesFromCacheWhenValid) {
  CacheInvalidateStrategy strategy(&catalog_, &executor_, &meter_, 100, 0.0);
  ASSERT_TRUE(strategy.AddProcedure(MakeP1(0, 10, 19)).ok());
  ASSERT_TRUE(strategy.Prepare().ok());
  EXPECT_TRUE(strategy.IsValid(0));
  meter_.Reset();
  EXPECT_EQ(strategy.Access(0).ValueOrDie().size(), 10u);
  // Valid cache: one page read (10 tuples, 40/page), no recompute screens.
  EXPECT_EQ(meter_.disk_reads(), 1u);
  EXPECT_EQ(meter_.screens(), 0u);
}

TEST_F(StrategyTest, CacheInvalidateInvalidatesOnConflictOnly) {
  CacheInvalidateStrategy strategy(&catalog_, &executor_, &meter_, 100, 0.0);
  ASSERT_TRUE(strategy.AddProcedure(MakeP1(0, 10, 19)).ok());
  ASSERT_TRUE(strategy.AddProcedure(MakeP1(1, 30, 39)).ok());
  ASSERT_TRUE(strategy.Prepare().ok());
  UpdateTuple(&strategy, 15, 16, 0);  // inside procedure 0's interval only
  EXPECT_FALSE(strategy.IsValid(0));
  EXPECT_TRUE(strategy.IsValid(1));
  // Next access recomputes and re-validates.
  EXPECT_EQ(Canon(strategy.Access(0).ValueOrDie()),
            Canon(Recompute(strategy.procedures()[0].query)));
  EXPECT_TRUE(strategy.IsValid(0));
}

TEST_F(StrategyTest, CacheInvalidateChargesInvalidationCost) {
  CacheInvalidateStrategy strategy(&catalog_, &executor_, &meter_, 100, 60.0);
  ASSERT_TRUE(strategy.AddProcedure(MakeP1(0, 0, 39)).ok());
  ASSERT_TRUE(strategy.Prepare().ok());
  meter_.Reset();
  UpdateTuple(&strategy, 5, 6, 0);
  EXPECT_EQ(strategy.invalidation_count(), 1u);
  EXPECT_DOUBLE_EQ(meter_.total_ms(), 60.0);
  // Already invalid: a second conflicting update records nothing new.
  UpdateTuple(&strategy, 6, 7, 0);
  EXPECT_EQ(strategy.invalidation_count(), 1u);
  EXPECT_DOUBLE_EQ(meter_.total_ms(), 60.0);
}

TEST_F(StrategyTest, CacheInvalidateFalseInvalidation) {
  // The i-lock covers the whole selection interval of a join procedure; an
  // update inside the interval invalidates even if the joined residual
  // would reject the new tuple — the paper's false invalidation.
  CacheInvalidateStrategy strategy(&catalog_, &executor_, &meter_, 100, 0.0);
  DatabaseProcedure p2 = MakeP2(0, 10, 19);
  p2.query.joins[0].residual = Conjunction(
      {rel::PredicateTerm{1, rel::CompareOp::kEq, Value(int64_t{-1})}});
  ASSERT_TRUE(strategy.AddProcedure(p2).ok());
  ASSERT_TRUE(strategy.Prepare().ok());
  EXPECT_TRUE(strategy.Access(0).ValueOrDie().empty());  // residual rejects
  UpdateTuple(&strategy, 12, 13, 2);  // in interval; result stays empty
  EXPECT_FALSE(strategy.IsValid(0));  // invalidated anyway
  EXPECT_TRUE(strategy.Access(0).ValueOrDie().empty());
}

TEST_F(StrategyTest, AvmMaintainsJoinProcedureThroughUpdates) {
  UpdateCacheAvmStrategy strategy(&catalog_, &executor_, &meter_, 100);
  ASSERT_TRUE(strategy.AddProcedure(MakeP2(0, 0, 39)).ok());
  ASSERT_TRUE(strategy.AddProcedure(MakeP1(1, 20, 29)).ok());
  ASSERT_TRUE(strategy.Prepare().ok());
  UpdateTuple(&strategy, 3, 25, 1);
  UpdateTuple(&strategy, 25, 2, 3);
  ASSERT_TRUE(strategy.OnTransactionEnd().ok());
  EXPECT_EQ(Canon(strategy.Access(0).ValueOrDie()),
            Canon(Recompute(strategy.procedures()[0].query)));
  EXPECT_EQ(Canon(strategy.Access(1).ValueOrDie()),
            Canon(Recompute(strategy.procedures()[1].query)));
}

TEST_F(StrategyTest, AvmAccessReadsOnlyStoredPages) {
  UpdateCacheAvmStrategy strategy(&catalog_, &executor_, &meter_, 100);
  ASSERT_TRUE(strategy.AddProcedure(MakeP1(0, 0, 39)).ok());
  ASSERT_TRUE(strategy.Prepare().ok());
  meter_.Reset();
  EXPECT_EQ(strategy.Access(0).ValueOrDie().size(), 40u);
  EXPECT_EQ(meter_.disk_reads(), 1u);  // 40 tuples = exactly one page
  EXPECT_EQ(meter_.screens(), 0u);
}

TEST_F(StrategyTest, AvmChargesScreenAndC3PerBrokenLock) {
  UpdateCacheAvmStrategy strategy(&catalog_, &executor_, &meter_, 100);
  ASSERT_TRUE(strategy.AddProcedure(MakeP1(0, 10, 19)).ok());
  ASSERT_TRUE(strategy.Prepare().ok());
  meter_.Reset();
  // Update fully outside the interval: no charges at all.
  UpdateTuple(&strategy, 30, 35, 0);
  ASSERT_TRUE(strategy.OnTransactionEnd().ok());
  EXPECT_DOUBLE_EQ(meter_.total_ms(), 0.0);
  // Update moving into the interval: one screen + one C3 + refresh I/O.
  UpdateTuple(&strategy, 31, 12, 0);
  EXPECT_EQ(meter_.screens(), 1u);
  EXPECT_EQ(meter_.delta_ops(), 1u);
  ASSERT_TRUE(strategy.OnTransactionEnd().ok());
  EXPECT_GE(meter_.disk_writes(), 1u);
}

TEST_F(StrategyTest, RvmMaintainsProceduresAndReportsSharing) {
  UpdateCacheRvmStrategy strategy(&catalog_, &executor_, &meter_, 100);
  ASSERT_TRUE(strategy.AddProcedure(MakeP1(0, 10, 19)).ok());
  ASSERT_TRUE(strategy.AddProcedure(MakeP2(1, 10, 19)).ok());  // shares base
  ASSERT_TRUE(strategy.Prepare().ok());
  EXPECT_GE(strategy.network_stats().shared_subexpression_hits, 1u);
  UpdateTuple(&strategy, 30, 15, 2);
  ASSERT_TRUE(strategy.OnTransactionEnd().ok());
  EXPECT_EQ(Canon(strategy.Access(0).ValueOrDie()),
            Canon(Recompute(strategy.procedures()[0].query)));
  EXPECT_EQ(Canon(strategy.Access(1).ValueOrDie()),
            Canon(Recompute(strategy.procedures()[1].query)));
}

TEST_F(StrategyTest, CacheInvalidateSurvivesCrashRecovery) {
  // The §3 recovery story: the validity bitmap is lost in a crash and
  // reconstructed from a checkpoint plus the invalidation log; cached pages
  // themselves are durable.  No stale result may be served afterwards.
  CacheInvalidateStrategy strategy(&catalog_, &executor_, &meter_, 100, 0.0);
  ASSERT_TRUE(strategy.AddProcedure(MakeP1(0, 0, 9)).ok());
  ASSERT_TRUE(strategy.AddProcedure(MakeP1(1, 20, 29)).ok());
  ASSERT_TRUE(strategy.Prepare().ok());
  const auto checkpoint = strategy.TakeValidityCheckpoint();
  // Invalidate procedure 0 after the checkpoint (logged).
  UpdateTuple(&strategy, 5, 100, 0);
  ASSERT_FALSE(strategy.IsValid(0));
  ASSERT_TRUE(strategy.IsValid(1));
  // Crash and recover: validity state must match the pre-crash state.
  ASSERT_TRUE(strategy.CrashAndRecover(checkpoint).ok());
  EXPECT_FALSE(strategy.IsValid(0));
  EXPECT_TRUE(strategy.IsValid(1));
  // And the served results are correct (0 recomputes, 1 reads cache).
  EXPECT_EQ(Canon(strategy.Access(0).ValueOrDie()),
            Canon(Recompute(strategy.procedures()[0].query)));
  EXPECT_EQ(Canon(strategy.Access(1).ValueOrDie()),
            Canon(Recompute(strategy.procedures()[1].query)));
  EXPECT_EQ(strategy.validity_log().records().size(), 2u);  // invalid+valid
}

TEST_F(StrategyTest, AllStrategiesAgreeAfterMixedWorkload) {
  std::vector<std::unique_ptr<Strategy>> strategies;
  strategies.push_back(std::make_unique<AlwaysRecomputeStrategy>(
      &catalog_, &executor_, &meter_, 100));
  strategies.push_back(std::make_unique<CacheInvalidateStrategy>(
      &catalog_, &executor_, &meter_, 100, 0.0));
  strategies.push_back(std::make_unique<UpdateCacheAvmStrategy>(
      &catalog_, &executor_, &meter_, 100));
  strategies.push_back(std::make_unique<UpdateCacheRvmStrategy>(
      &catalog_, &executor_, &meter_, 100));
  for (auto& strategy : strategies) {
    ASSERT_TRUE(strategy->AddProcedure(MakeP1(0, 5, 14)).ok());
    ASSERT_TRUE(strategy->AddProcedure(MakeP2(1, 10, 29)).ok());
    ASSERT_TRUE(strategy->Prepare().ok());
  }
  // One shared update stream observed by every strategy.
  for (int round = 0; round < 10; ++round) {
    const std::size_t index = static_cast<std::size_t>(round * 3 % 40);
    const Tuple old_tuple = base_->Read(rids_[index]).ValueOrDie();
    const Tuple new_tuple(
        {Value(static_cast<int64_t>((round * 7) % 40)),
         Value(static_cast<int64_t>(round % 4))});
    ASSERT_TRUE(base_->UpdateInPlace(rids_[index], new_tuple).ok());
    for (auto& strategy : strategies) {
      strategy->OnDelete("R1", old_tuple);
      strategy->OnInsert("R1", new_tuple);
    }
    for (auto& strategy : strategies) {
      ASSERT_TRUE(strategy->OnTransactionEnd().ok());
    }
    for (ProcId id : {ProcId{0}, ProcId{1}}) {
      const auto expected = Canon(strategies[0]->Access(id).ValueOrDie());
      for (std::size_t s = 1; s < strategies.size(); ++s) {
        EXPECT_EQ(Canon(strategies[s]->Access(id).ValueOrDie()), expected)
            << strategies[s]->name() << " diverged on procedure " << id
            << " round " << round;
      }
    }
  }
}

}  // namespace
}  // namespace procsim::proc
