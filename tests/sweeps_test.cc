#include "cost/sweeps.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace procsim::cost {
namespace {

TEST(SpacingTest, LinSpaceEndpointsAndCount) {
  const std::vector<double> v = LinSpace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(SpacingTest, LogSpaceIsGeometric) {
  const std::vector<double> v = LogSpace(0.001, 0.1, 3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NEAR(v[0], 0.001, 1e-12);
  EXPECT_NEAR(v[1], 0.01, 1e-12);
  EXPECT_NEAR(v[2], 0.1, 1e-12);
}

TEST(SweepTest, UpdateProbabilitySweepShape) {
  Params base;
  const auto series =
      SweepUpdateProbability(base, ProcModel::kModel1, 0.0, 0.9, 10);
  ASSERT_EQ(series.size(), 10u);
  // AR column constant; AVM column strictly increasing.
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ(series[i].always_recompute,
                     series[0].always_recompute);
    EXPECT_GT(series[i].update_cache_avm, series[i - 1].update_cache_avm);
  }
}

TEST(SweepTest, SharingSweepOnlyMovesRvm) {
  Params base;
  const auto series = SweepSharingFactor(base, ProcModel::kModel2, 11);
  ASSERT_EQ(series.size(), 11u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ(series[i].update_cache_avm,
                     series[0].update_cache_avm);
    EXPECT_LE(series[i].update_cache_rvm, series[i - 1].update_cache_rvm);
  }
}

TEST(SweepTest, InvalidationCostSweepOnlyMovesCi) {
  Params base;
  base.SetUpdateProbability(0.3);
  const auto series =
      SweepInvalidationCost(base, ProcModel::kModel1, {0, 30, 60});
  ASSERT_EQ(series.size(), 3u);
  EXPECT_LT(series[0].cache_invalidate, series[1].cache_invalidate);
  EXPECT_LT(series[1].cache_invalidate, series[2].cache_invalidate);
  EXPECT_DOUBLE_EQ(series[0].always_recompute, series[2].always_recompute);
  EXPECT_DOUBLE_EQ(series[0].update_cache_rvm, series[2].update_cache_rvm);
}

TEST(RegionTest, GridDimensionsAndLowPUpdateCacheBand) {
  Params base;
  const WinnerRegionGrid grid = ComputeWinnerRegions(
      base, ProcModel::kModel1, 1e-5, 0.05, 5, 0.05, 0.95, 7);
  ASSERT_EQ(grid.f_values.size(), 5u);
  ASSERT_EQ(grid.p_values.size(), 7u);
  // Lowest P column: Update Cache wins for every object size (figure 12).
  for (std::size_t i = 0; i < grid.f_values.size(); ++i) {
    EXPECT_TRUE(grid.winner[i][0] == Strategy::kUpdateCacheAvm ||
                grid.winner[i][0] == Strategy::kUpdateCacheRvm);
  }
  // Highest P, largest objects: Always Recompute wins.
  EXPECT_EQ(grid.winner.back().back(), Strategy::kAlwaysRecompute);
}

TEST(RegionTest, UpdateCacheBandNarrowsForLargeObjects) {
  // Figure 12's "interesting phenomenon": UC wins a smaller P range when
  // objects are large.
  Params base;
  const WinnerRegionGrid grid = ComputeWinnerRegions(
      base, ProcModel::kModel1, 1e-5, 0.05, 6, 0.02, 0.95, 24);
  auto uc_band_width = [&](std::size_t f_index) {
    std::size_t count = 0;
    for (std::size_t j = 0; j < grid.p_values.size(); ++j) {
      if (grid.winner[f_index][j] == Strategy::kUpdateCacheAvm ||
          grid.winner[f_index][j] == Strategy::kUpdateCacheRvm) {
        ++count;
      }
    }
    return count;
  };
  EXPECT_GT(uc_band_width(0), uc_band_width(grid.f_values.size() - 1));
}

TEST(ClosenessTest, HighPBandIsClose) {
  // Figure 14: at high P, CI is within 2x of UC (UC degrades).
  Params base;
  const ClosenessGrid grid = ComputeClosenessGrid(
      base, ProcModel::kModel1, 1e-5, 0.05, 5, 0.05, 0.95, 7);
  for (std::size_t i = 0; i < grid.f_values.size(); ++i) {
    EXPECT_LE(grid.ratio[i].back(), 2.0) << "f=" << grid.f_values[i];
  }
}

TEST(ClosenessTest, LargeObjectsLowPIsNotClose) {
  // Figure 6/14: for large objects at low P, UC is far better than CI.
  Params base;
  const ClosenessGrid grid = ComputeClosenessGrid(
      base, ProcModel::kModel1, 0.01, 0.05, 3, 0.05, 0.3, 3);
  EXPECT_GT(grid.ratio[0][0], 2.0);
}

TEST(CsvTest, SweepCsvHasHeaderAndRows) {
  Params base;
  const auto series =
      SweepUpdateProbability(base, ProcModel::kModel1, 0.0, 0.5, 3);
  std::ostringstream out;
  WriteSweepCsv(out, "P", series);
  const std::string csv = out.str();
  EXPECT_EQ(csv.substr(0, 2), "P,");
  // Header + 3 data rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("always_recompute"), std::string::npos);
}

TEST(CsvTest, RegionsCsvEnumeratesGrid) {
  Params base;
  const auto grid = ComputeWinnerRegions(base, ProcModel::kModel1, 1e-4,
                                         1e-2, 3, 0.1, 0.9, 4);
  std::ostringstream out;
  WriteRegionsCsv(out, grid);
  const std::string csv = out.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1 + 3 * 4);
  EXPECT_NE(csv.find("AVM"), std::string::npos);
}

TEST(CrossoverTest, BisectionAgreesWithSweep) {
  Params base;
  const double crossover = SharingCrossover(base, ProcModel::kModel2);
  ASSERT_GT(crossover, 0.0);
  Params below = base;
  below.SF = crossover - 0.05;
  Params above = base;
  above.SF = crossover + 0.05;
  AnalyticModel m_below(below, ProcModel::kModel2);
  AnalyticModel m_above(above, ProcModel::kModel2);
  EXPECT_GT(m_below.CostPerQuery(Strategy::kUpdateCacheRvm),
            m_below.CostPerQuery(Strategy::kUpdateCacheAvm));
  EXPECT_LT(m_above.CostPerQuery(Strategy::kUpdateCacheRvm),
            m_above.CostPerQuery(Strategy::kUpdateCacheAvm));
}

}  // namespace
}  // namespace procsim::cost
