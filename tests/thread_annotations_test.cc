// Proves the thread-safety annotation macros compile on every supported
// toolchain (they expand to Clang attributes under Clang and to nothing
// elsewhere) and that the annotated guard types actually synchronize.
// Under the `thread-safety` preset (Clang, -Werror=thread-safety) this file
// doubles as a positive fixture: every guarded access below is correctly
// latched, so the analysis must accept it.  The negative fixture —
// tests/negative_compile/thread_safety_fail.cc — proves the same build
// rejects an unguarded write.
#include "util/thread_annotations.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/latch.h"

namespace procsim {
namespace {

using util::LatchRank;
using util::RankedLockGuard;
using util::RankedMutex;
using util::RankedSharedLockGuard;
using util::RankedSharedMutex;
using util::RankedUniqueLock;

/// A miniature latched structure in the style of the engine's subsystems:
/// one capability, fields guarded by it, a REQUIRES helper, and an
/// annotation-free quiescent accessor.
class AnnotatedCounter {
 public:
  void Increment() {
    RankedLockGuard guard(latch_);
    IncrementLocked();
  }

  int Snapshot() const {
    RankedLockGuard guard(latch_);
    return value_;
  }

  /// Quiescent-only accessor (analysis disabled by design, mirroring the
  /// engine's validator escape hatches).
  int UnsynchronizedValue() const NO_THREAD_SAFETY_ANALYSIS { return value_; }

 private:
  void IncrementLocked() REQUIRES(latch_) { ++value_; }

  mutable RankedMutex latch_{LatchRank::kBufferCache, "AnnotatedCounter"};
  int value_ GUARDED_BY(latch_) = 0;
};

/// Reader/writer flavor over the annotated shared mutex.
class AnnotatedRegister {
 public:
  void Store(int value) {
    RankedLockGuard guard(latch_);  // exclusive over the shared mutex
    value_ = value;
  }

  int Load() const {
    RankedSharedLockGuard guard(latch_);
    return value_;
  }

 private:
  mutable RankedSharedMutex latch_{LatchRank::kDatabase, "AnnotatedRegister"};
  int value_ GUARDED_BY(latch_) = 0;
};

TEST(ThreadAnnotationsTest, AnnotatedGuardsSynchronizeConcurrentWriters) {
  AnnotatedCounter counter;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 1000;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&counter] {
      for (int j = 0; j < kIncrements; ++j) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Snapshot(), kThreads * kIncrements);
  EXPECT_EQ(counter.UnsynchronizedValue(), kThreads * kIncrements);
}

TEST(ThreadAnnotationsTest, SharedGuardAllowsConcurrentReaders) {
  AnnotatedRegister reg;
  reg.Store(42);
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&reg] {
      for (int j = 0; j < 100; ++j) EXPECT_EQ(reg.Load(), 42);
    });
  }
  for (std::thread& thread : readers) thread.join();
}

TEST(ThreadAnnotationsTest, UtilMutexLockGuardsPlainState) {
  // The obs layer's annotated leaf mutex (no rank: never held while calling
  // instrumented code).
  struct Guarded {
    util::Mutex mutex;
    int value GUARDED_BY(mutex) = 0;
  } state;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&state] {
      for (int j = 0; j < 1000; ++j) {
        util::MutexLock lock(state.mutex);
        ++state.value;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  util::MutexLock lock(state.mutex);
  EXPECT_EQ(state.value, 4000);
}

TEST(ThreadAnnotationsTest, RankedUniqueLockIsBasicLockable) {
  // The session pool parks a RankedUniqueLock on a condition_variable_any;
  // here we just exercise the manual lock()/unlock() cycle it relies on.
  RankedMutex mutex(LatchRank::kSessionPool, "pool");
  RankedUniqueLock lock(mutex);
  lock.unlock();
  lock.lock();
  // Destructor unlocks the re-acquired latch.
}

TEST(ThreadAnnotationsTest, MacrosExpandToNothingWithoutClang) {
#if defined(__clang__)
  SUCCEED() << "Clang build: attributes are live and checked by the "
               "thread-safety preset";
#else
  // The macros must leave no trace on other compilers — this file compiling
  // at all is the assertion, but make the degradation explicit.
  SUCCEED() << "non-Clang build: annotation macros compile to no-ops";
#endif
}

}  // namespace
}  // namespace procsim
