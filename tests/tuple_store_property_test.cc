// Randomized property test: TupleStore behaves like a reference multiset
// under interleaved insert/remove/rebuild, with probe indexes added at
// random points staying consistent.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "ivm/tuple_store.h"
#include "util/rng.h"

namespace procsim::ivm {
namespace {

using rel::Tuple;
using rel::Value;

Tuple Row(int64_t a, int64_t b) { return Tuple({Value(a), Value(b)}); }

class TupleStorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TupleStorePropertyTest, MatchesReferenceMultiset) {
  Rng rng(GetParam());
  CostMeter meter;
  storage::SimulatedDisk disk(1000, &meter);
  TupleStore store(&disk, 50);
  std::map<std::pair<int64_t, int64_t>, std::size_t> reference;
  auto ref_count = [&](int64_t a, int64_t b) {
    auto it = reference.find({a, b});
    return it == reference.end() ? std::size_t{0} : it->second;
  };
  bool indexed0 = false;
  bool indexed1 = false;

  for (int step = 0; step < 2500; ++step) {
    const int64_t a = static_cast<int64_t>(rng.Uniform(12));
    const int64_t b = static_cast<int64_t>(rng.Uniform(6));
    const int op = static_cast<int>(rng.Uniform(100));
    if (op < 50) {
      ASSERT_TRUE(store.Insert(Row(a, b)).ok());
      ++reference[{a, b}];
    } else if (op < 85) {
      Status st = store.Remove(Row(a, b));
      if (ref_count(a, b) > 0) {
        ASSERT_TRUE(st.ok());
        if (--reference[{a, b}] == 0) reference.erase({a, b});
      } else {
        EXPECT_EQ(st.code(), StatusCode::kNotFound);
      }
    } else if (op < 90 && !indexed0) {
      store.EnsureProbeIndex(0);
      indexed0 = true;
    } else if (op < 95 && !indexed1) {
      store.EnsureProbeIndex(1);
      indexed1 = true;
    } else if (op == 99) {
      // Occasional full rebuild with the current reference contents.
      std::vector<Tuple> contents;
      for (const auto& [key, count] : reference) {
        for (std::size_t i = 0; i < count; ++i) {
          contents.push_back(Row(key.first, key.second));
        }
      }
      ASSERT_TRUE(store.Rebuild(contents).ok());
    }

    if (step % 250 == 249) {
      std::size_t total = 0;
      for (const auto& [key, count] : reference) total += count;
      ASSERT_EQ(store.size(), total) << "step " << step;
      // Contains agrees for every key in the domain.
      for (int64_t x = 0; x < 12; ++x) {
        for (int64_t y = 0; y < 6; ++y) {
          EXPECT_EQ(store.Contains(Row(x, y)), ref_count(x, y) > 0);
        }
      }
      if (indexed0) {
        for (int64_t x = 0; x < 12; ++x) {
          std::size_t expected = 0;
          for (int64_t y = 0; y < 6; ++y) expected += ref_count(x, y);
          EXPECT_EQ(store.ProbeEqual(0, x).ValueOrDie().size(), expected)
              << "probe col 0 = " << x << " step " << step;
        }
      }
      if (indexed1) {
        for (int64_t y = 0; y < 6; ++y) {
          std::size_t expected = 0;
          for (int64_t x = 0; x < 12; ++x) expected += ref_count(x, y);
          EXPECT_EQ(store.ProbeEqual(1, y).ValueOrDie().size(), expected);
        }
      }
      // ReadAll returns exactly the reference contents.
      Result<std::vector<Tuple>> all = store.ReadAll();
      ASSERT_TRUE(all.ok());
      std::vector<std::string> canon_store;
      for (const Tuple& t : all.ValueOrDie()) {
        canon_store.push_back(t.ToString());
      }
      std::sort(canon_store.begin(), canon_store.end());
      std::vector<std::string> canon_ref;
      for (const auto& [key, count] : reference) {
        for (std::size_t i = 0; i < count; ++i) {
          canon_ref.push_back(Row(key.first, key.second).ToString());
        }
      }
      std::sort(canon_ref.begin(), canon_ref.end());
      ASSERT_EQ(canon_store, canon_ref) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TupleStorePropertyTest,
                         ::testing::Values(42, 43, 44, 45));

}  // namespace
}  // namespace procsim::ivm
