#include "ivm/tuple_store.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace procsim::ivm {
namespace {

using rel::Tuple;
using rel::Value;

Tuple Row(int64_t a, int64_t b) { return Tuple({Value(a), Value(b)}); }

class TupleStoreTest : public ::testing::Test {
 protected:
  TupleStoreTest() : disk_(4000, &meter_) {}
  CostMeter meter_;
  storage::SimulatedDisk disk_;
};

TEST_F(TupleStoreTest, InsertContainsRemove) {
  TupleStore store(&disk_, 100);
  ASSERT_TRUE(store.Insert(Row(1, 2)).ok());
  EXPECT_TRUE(store.Contains(Row(1, 2)));
  EXPECT_FALSE(store.Contains(Row(2, 1)));
  ASSERT_TRUE(store.Remove(Row(1, 2)).ok());
  EXPECT_FALSE(store.Contains(Row(1, 2)));
  EXPECT_EQ(store.Remove(Row(1, 2)).code(), StatusCode::kNotFound);
}

TEST_F(TupleStoreTest, BagSemanticsForDuplicates) {
  TupleStore store(&disk_, 100);
  ASSERT_TRUE(store.Insert(Row(1, 1)).ok());
  ASSERT_TRUE(store.Insert(Row(1, 1)).ok());
  EXPECT_EQ(store.size(), 2u);
  ASSERT_TRUE(store.Remove(Row(1, 1)).ok());
  EXPECT_TRUE(store.Contains(Row(1, 1)));  // one instance left
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(TupleStoreTest, ReadAllReturnsEverythingAndChargesPerPage) {
  TupleStore store(&disk_, 100);
  disk_.set_metering_enabled(false);
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Insert(Row(i, i)).ok());
  }
  disk_.set_metering_enabled(true);
  meter_.Reset();
  auto all = store.ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.ValueOrDie().size(), 100u);
  EXPECT_EQ(meter_.disk_reads(), 3u);  // 100 padded tuples, 40/page
  EXPECT_EQ(store.page_count(), 3u);
}

TEST_F(TupleStoreTest, ProbeIndexOnDemand) {
  TupleStore store(&disk_, 100);
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.Insert(Row(i % 4, i)).ok());
  }
  // Index built after data exists; must backfill.
  store.EnsureProbeIndex(0);
  auto matches = store.ProbeEqual(0, 2);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches.ValueOrDie().size(), 5u);
  for (const Tuple& t : matches.ValueOrDie()) {
    EXPECT_EQ(t.value(0).AsInt64(), 2);
  }
  // Index maintained by later mutations.
  ASSERT_TRUE(store.Insert(Row(2, 99)).ok());
  ASSERT_TRUE(store.Remove(Row(2, 2)).ok());
  EXPECT_EQ(store.ProbeEqual(0, 2).ValueOrDie().size(), 5u);
}

TEST_F(TupleStoreTest, ProbeWithoutIndexFails) {
  TupleStore store(&disk_, 100);
  ASSERT_TRUE(store.Insert(Row(1, 2)).ok());
  EXPECT_EQ(store.ProbeEqual(0, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TupleStoreTest, MultipleProbeIndexesCoexist) {
  TupleStore store(&disk_, 100);
  store.EnsureProbeIndex(0);
  store.EnsureProbeIndex(1);
  ASSERT_TRUE(store.Insert(Row(1, 10)).ok());
  ASSERT_TRUE(store.Insert(Row(2, 10)).ok());
  EXPECT_EQ(store.ProbeEqual(0, 1).ValueOrDie().size(), 1u);
  EXPECT_EQ(store.ProbeEqual(1, 10).ValueOrDie().size(), 2u);
}

TEST_F(TupleStoreTest, RebuildChargesReadModifyWrite) {
  TupleStore store(&disk_, 100);
  std::vector<Tuple> eighty;
  for (int64_t i = 0; i < 80; ++i) eighty.push_back(Row(i, i));
  ASSERT_TRUE(store.Rebuild(eighty).ok());  // 2 pages
  meter_.Reset();
  ASSERT_TRUE(store.Rebuild(eighty).ok());
  // Old 2 pages re-read; new 2 pages written (+ allocations/appends charged
  // once per page within the access scope).
  EXPECT_GE(meter_.disk_reads(), 2u);
  EXPECT_GE(meter_.disk_writes(), 2u);
  EXPECT_EQ(store.size(), 80u);
}

TEST_F(TupleStoreTest, RebuildReplacesContents) {
  TupleStore store(&disk_, 100);
  store.EnsureProbeIndex(0);
  ASSERT_TRUE(store.Insert(Row(1, 1)).ok());
  ASSERT_TRUE(store.Rebuild({Row(2, 2), Row(3, 3)}).ok());
  EXPECT_FALSE(store.Contains(Row(1, 1)));
  EXPECT_TRUE(store.Contains(Row(2, 2)));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.ProbeEqual(0, 1).ValueOrDie().size(), 0u);
  EXPECT_EQ(store.ProbeEqual(0, 3).ValueOrDie().size(), 1u);
}

TEST_F(TupleStoreTest, SnapshotIsUnmetered) {
  TupleStore store(&disk_, 100);
  ASSERT_TRUE(store.Insert(Row(1, 1)).ok());
  meter_.Reset();
  auto snapshot = store.SnapshotForTesting();
  EXPECT_EQ(snapshot.size(), 1u);
  EXPECT_DOUBLE_EQ(meter_.total_ms(), 0.0);
}

}  // namespace
}  // namespace procsim::ivm
