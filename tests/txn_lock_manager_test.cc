// 2PL lock-table semantics: the S/X conflict table, S→X upgrades, and all
// three deadlock policies — wound-wait victim selection, cycle detection,
// and plain blocking with a planted (then broken) deadlock made visible
// through the waits-for graph.
#include "txn/lock_manager.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/status.h"

namespace procsim::txn {
namespace {

const Granule kR1 = Granule::Relation("R1");

void SpinUntil(const std::function<bool()>& done) {
  while (!done()) std::this_thread::yield();
}

TEST(TxnLockManagerTest, SharedLocksCoexist) {
  LockManager locks(LockManager::DeadlockPolicy::kWoundWait);
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kShared).ok());
  ASSERT_TRUE(locks.Acquire(2, kR1, LockMode::kShared).ok());
  ASSERT_TRUE(locks.Acquire(3, kR1, LockMode::kShared).ok());
  EXPECT_TRUE(locks.Holds(1, kR1, LockMode::kShared));
  EXPECT_TRUE(locks.Holds(3, kR1, LockMode::kShared));
  EXPECT_EQ(locks.held_count(2), 1u);
  locks.ReleaseAll(1);
  EXPECT_EQ(locks.held_count(1), 0u);
  EXPECT_TRUE(locks.Holds(2, kR1, LockMode::kShared));
}

TEST(TxnLockManagerTest, ReacquireAtHeldModeIsIdempotent) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kExclusive).ok());
  // X covers both re-requests; S under X stays X.
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kExclusive).ok());
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kShared).ok());
  EXPECT_TRUE(locks.Holds(1, kR1, LockMode::kExclusive));
  EXPECT_EQ(locks.held_count(1), 1u);
}

TEST(TxnLockManagerTest, TupleGranulesAreIndependent) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, Granule::Tuple("R1", 7), LockMode::kExclusive)
                  .ok());
  // A different tuple, and the same tuple id in a different relation,
  // never conflict.
  ASSERT_TRUE(locks.Acquire(2, Granule::Tuple("R1", 8), LockMode::kExclusive)
                  .ok());
  ASSERT_TRUE(locks.Acquire(3, Granule::Tuple("R2", 7), LockMode::kExclusive)
                  .ok());
  EXPECT_FALSE(Granule::Tuple("R1", 7) == Granule::Relation("R1"));
  EXPECT_EQ(Granule::Tuple("R1", 7).ToString(), "R1[7]");
}

TEST(TxnLockManagerTest, SoleHolderUpgradesInPlace) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kShared).ok());
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Holds(1, kR1, LockMode::kExclusive));
  EXPECT_EQ(locks.held_count(1), 1u);
}

TEST(TxnLockManagerTest, YoungerRequesterWaitsForOlderHolder) {
  LockManager locks(LockManager::DeadlockPolicy::kWoundWait);
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kExclusive).ok());
  std::atomic<bool> granted{false};
  std::thread younger([&] {
    // Young→old waits block instead of wounding; granted after release.
    ASSERT_TRUE(locks.Acquire(2, kR1, LockMode::kShared).ok());
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted);
  EXPECT_FALSE(locks.IsWounded(1));
  locks.ReleaseAll(1);
  younger.join();
  EXPECT_TRUE(granted);
  EXPECT_TRUE(locks.Holds(2, kR1, LockMode::kShared));
}

TEST(TxnLockManagerTest, OlderRequesterWoundsYoungerHolder) {
  LockManager locks(LockManager::DeadlockPolicy::kWoundWait);
  ASSERT_TRUE(locks.Acquire(2, kR1, LockMode::kExclusive).ok());
  std::thread older([&] {
    // Txn 1 is older (smaller id): it wounds holder 2 and waits it out.
    ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kExclusive).ok());
  });
  SpinUntil([&] { return locks.IsWounded(2); });
  // The victim's next request fails Aborted; it must roll back.
  const Status st = locks.Acquire(2, Granule::Relation("R2"),
                                  LockMode::kShared);
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  locks.ReleaseAll(2);
  older.join();
  EXPECT_TRUE(locks.Holds(1, kR1, LockMode::kExclusive));
  EXPECT_FALSE(locks.IsWounded(2));  // ReleaseAll forgets the wound
}

TEST(TxnLockManagerTest, ContendedUpgradeWoundsTheOtherReader) {
  LockManager locks(LockManager::DeadlockPolicy::kWoundWait);
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kShared).ok());
  ASSERT_TRUE(locks.Acquire(2, kR1, LockMode::kShared).ok());
  std::thread upgrader([&] {
    ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kExclusive).ok());
  });
  SpinUntil([&] { return locks.IsWounded(2); });
  locks.ReleaseAll(2);
  upgrader.join();
  EXPECT_TRUE(locks.Holds(1, kR1, LockMode::kExclusive));
}

TEST(TxnLockManagerTest, CycleDetectAbortsExactlyOneVictim) {
  LockManager locks(LockManager::DeadlockPolicy::kCycleDetect);
  const Granule a = Granule::Relation("A");
  const Granule b = Granule::Relation("B");
  ASSERT_TRUE(locks.Acquire(1, a, LockMode::kExclusive).ok());
  ASSERT_TRUE(locks.Acquire(2, b, LockMode::kExclusive).ok());
  // Cross requests: whichever side closes the cycle aborts itself; the
  // other must then be granted once the victim releases.
  Status first_status, second_status;
  std::thread t1([&] {
    first_status = locks.Acquire(1, b, LockMode::kExclusive);
    if (!first_status.ok()) locks.ReleaseAll(1);
  });
  std::thread t2([&] {
    second_status = locks.Acquire(2, a, LockMode::kExclusive);
    if (!second_status.ok()) locks.ReleaseAll(2);
  });
  t1.join();
  t2.join();
  const bool first_aborted = !first_status.ok();
  const bool second_aborted = !second_status.ok();
  EXPECT_NE(first_aborted, second_aborted)
      << "exactly one transaction must be the deadlock victim: "
      << first_status.ToString() << " / " << second_status.ToString();
  const Status& victim = first_aborted ? first_status : second_status;
  EXPECT_EQ(victim.code(), StatusCode::kAborted);
  EXPECT_NE(victim.ToString().find("deadlock victim"), std::string::npos);
}

TEST(TxnLockManagerTest, PlantedDeadlockIsVisibleInWaitsForGraph) {
  // kBlock has no arbiter, so a genuine cross wait really deadlocks; the
  // waits-for probe must see the cycle, and wounding one party breaks it.
  LockManager locks(LockManager::DeadlockPolicy::kBlock);
  const Granule a = Granule::Relation("A");
  const Granule b = Granule::Relation("B");
  ASSERT_TRUE(locks.Acquire(1, a, LockMode::kExclusive).ok());
  ASSERT_TRUE(locks.Acquire(2, b, LockMode::kExclusive).ok());
  Status blocked_status, victim_status;
  std::thread blocked([&] {
    blocked_status = locks.Acquire(1, b, LockMode::kExclusive);
  });
  std::thread victim([&] {
    victim_status = locks.Acquire(2, a, LockMode::kExclusive);
    if (!victim_status.ok()) locks.ReleaseAll(2);
  });
  std::vector<TxnId> cycle;
  SpinUntil([&] {
    cycle = locks.FindWaitsForCycle();
    return !cycle.empty();
  });
  EXPECT_GE(cycle.size(), 1u);
  for (const TxnId txn : cycle) {
    EXPECT_TRUE(txn == 1 || txn == 2) << "unexpected txn " << txn;
  }
  locks.WoundForTesting(2);
  victim.join();
  EXPECT_EQ(victim_status.code(), StatusCode::kAborted);
  blocked.join();
  EXPECT_TRUE(blocked_status.ok());
  EXPECT_TRUE(locks.Holds(1, b, LockMode::kExclusive));
  EXPECT_TRUE(locks.FindWaitsForCycle().empty());
}

}  // namespace
}  // namespace procsim::txn
