// 2PL lock-table semantics: the S/X conflict table, S→X upgrades, and all
// three deadlock policies — wound-wait victim selection, cycle detection,
// and plain blocking with a planted (then broken) deadlock made visible
// through the waits-for graph.
#include "txn/lock_manager.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/status.h"

namespace procsim::txn {
namespace {

const Granule kR1 = Granule::Relation("R1");

void SpinUntil(const std::function<bool()>& done) {
  while (!done()) std::this_thread::yield();
}

TEST(TxnLockManagerTest, SharedLocksCoexist) {
  LockManager locks(LockManager::DeadlockPolicy::kWoundWait);
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kShared).ok());
  ASSERT_TRUE(locks.Acquire(2, kR1, LockMode::kShared).ok());
  ASSERT_TRUE(locks.Acquire(3, kR1, LockMode::kShared).ok());
  EXPECT_TRUE(locks.Holds(1, kR1, LockMode::kShared));
  EXPECT_TRUE(locks.Holds(3, kR1, LockMode::kShared));
  EXPECT_EQ(locks.held_count(2), 1u);
  locks.ReleaseAll(1);
  EXPECT_EQ(locks.held_count(1), 0u);
  EXPECT_TRUE(locks.Holds(2, kR1, LockMode::kShared));
}

TEST(TxnLockManagerTest, ReacquireAtHeldModeIsIdempotent) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kExclusive).ok());
  // X covers both re-requests; S under X stays X.
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kExclusive).ok());
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kShared).ok());
  EXPECT_TRUE(locks.Holds(1, kR1, LockMode::kExclusive));
  EXPECT_EQ(locks.held_count(1), 1u);
}

TEST(TxnLockManagerTest, TupleGranulesAreIndependent) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, Granule::Tuple("R1", 7), LockMode::kExclusive)
                  .ok());
  // A different tuple, and the same tuple id in a different relation,
  // never conflict.
  ASSERT_TRUE(locks.Acquire(2, Granule::Tuple("R1", 8), LockMode::kExclusive)
                  .ok());
  ASSERT_TRUE(locks.Acquire(3, Granule::Tuple("R2", 7), LockMode::kExclusive)
                  .ok());
  EXPECT_FALSE(Granule::Tuple("R1", 7) == Granule::Relation("R1"));
  EXPECT_EQ(Granule::Tuple("R1", 7).ToString(), "R1[7]");
}

TEST(TxnLockManagerTest, SoleHolderUpgradesInPlace) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kShared).ok());
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Holds(1, kR1, LockMode::kExclusive));
  EXPECT_EQ(locks.held_count(1), 1u);
}

TEST(TxnLockManagerTest, YoungerRequesterWaitsForOlderHolder) {
  LockManager locks(LockManager::DeadlockPolicy::kWoundWait);
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kExclusive).ok());
  std::atomic<bool> granted{false};
  std::thread younger([&] {
    // Young→old waits block instead of wounding; granted after release.
    ASSERT_TRUE(locks.Acquire(2, kR1, LockMode::kShared).ok());
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted);
  EXPECT_FALSE(locks.IsWounded(1));
  locks.ReleaseAll(1);
  younger.join();
  EXPECT_TRUE(granted);
  EXPECT_TRUE(locks.Holds(2, kR1, LockMode::kShared));
}

TEST(TxnLockManagerTest, OlderRequesterWoundsYoungerHolder) {
  LockManager locks(LockManager::DeadlockPolicy::kWoundWait);
  ASSERT_TRUE(locks.Acquire(2, kR1, LockMode::kExclusive).ok());
  std::thread older([&] {
    // Txn 1 is older (smaller id): it wounds holder 2 and waits it out.
    ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kExclusive).ok());
  });
  SpinUntil([&] { return locks.IsWounded(2); });
  // The victim's next request fails Aborted; it must roll back.
  const Status st = locks.Acquire(2, Granule::Relation("R2"),
                                  LockMode::kShared);
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  locks.ReleaseAll(2);
  older.join();
  EXPECT_TRUE(locks.Holds(1, kR1, LockMode::kExclusive));
  EXPECT_FALSE(locks.IsWounded(2));  // ReleaseAll forgets the wound
}

TEST(TxnLockManagerTest, ContendedUpgradeWoundsTheOtherReader) {
  LockManager locks(LockManager::DeadlockPolicy::kWoundWait);
  ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kShared).ok());
  ASSERT_TRUE(locks.Acquire(2, kR1, LockMode::kShared).ok());
  std::thread upgrader([&] {
    ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kExclusive).ok());
  });
  SpinUntil([&] { return locks.IsWounded(2); });
  locks.ReleaseAll(2);
  upgrader.join();
  EXPECT_TRUE(locks.Holds(1, kR1, LockMode::kExclusive));
}

TEST(TxnLockManagerTest, WoundingAParkedVictimWakesIt) {
  // The cross-lock case: old txn 1 holds B, young txn 2 holds A and parks
  // on B.  When 1 then requests A it wounds 2 — and must wake it, or both
  // sides stay parked forever (the deadlock wound-wait exists to prevent).
  LockManager locks(LockManager::DeadlockPolicy::kWoundWait);
  const Granule a = Granule::Relation("A");
  const Granule b = Granule::Relation("B");
  ASSERT_TRUE(locks.Acquire(1, b, LockMode::kExclusive).ok());
  ASSERT_TRUE(locks.Acquire(2, a, LockMode::kExclusive).ok());
  Status victim_status;
  std::thread victim([&] {
    victim_status = locks.Acquire(2, b, LockMode::kExclusive);
    if (!victim_status.ok()) locks.ReleaseAll(2);
  });
  // Let the victim park on B before the wounder shows up.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread wounder([&] {
    ASSERT_TRUE(locks.Acquire(1, a, LockMode::kExclusive).ok());
  });
  victim.join();
  EXPECT_EQ(victim_status.code(), StatusCode::kAborted);
  wounder.join();
  EXPECT_TRUE(locks.Holds(1, a, LockMode::kExclusive));
  EXPECT_TRUE(locks.Holds(1, b, LockMode::kExclusive));
}

TEST(TxnLockManagerTest, NewReadersDoNotOvertakeAParkedOlderWriter) {
  // Fairness: once an older writer is parked, later shared requests on the
  // same granule queue behind it instead of prolonging its wait.
  LockManager locks(LockManager::DeadlockPolicy::kBlock);
  ASSERT_TRUE(locks.Acquire(2, kR1, LockMode::kShared).ok());
  std::atomic<bool> writer_granted{false};
  std::atomic<bool> reader_granted{false};
  std::thread writer([&] {
    ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kExclusive).ok());
    writer_granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread reader([&] {
    ASSERT_TRUE(locks.Acquire(3, kR1, LockMode::kShared).ok());
    reader_granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_granted);
  EXPECT_FALSE(reader_granted);  // deferred to the older X waiter
  locks.ReleaseAll(2);
  writer.join();
  EXPECT_TRUE(writer_granted);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(reader_granted);  // now queued behind the writer's hold
  locks.ReleaseAll(1);
  reader.join();
  EXPECT_TRUE(locks.Holds(3, kR1, LockMode::kShared));
}

TEST(TxnLockManagerTest, HolderUpgradeIsNotDeferredToAParkedWaiter) {
  // The fairness rule must exempt upgrades: the sole S holder upgrading to
  // X past a parked older X waiter cannot starve it (the waiter must
  // outwait the hold regardless) — deferring would deadlock both.
  LockManager locks(LockManager::DeadlockPolicy::kBlock);
  ASSERT_TRUE(locks.Acquire(2, kR1, LockMode::kShared).ok());
  std::thread older([&] {
    ASSERT_TRUE(locks.Acquire(1, kR1, LockMode::kExclusive).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(locks.Acquire(2, kR1, LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Holds(2, kR1, LockMode::kExclusive));
  locks.ReleaseAll(2);
  older.join();
  EXPECT_TRUE(locks.Holds(1, kR1, LockMode::kExclusive));
}

TEST(TxnLockManagerTest, CycleDetectSeesDeferralEdges) {
  // A deadlock threaded through a fairness deferral (T3 defers to parked
  // T1) must still be caught by the cycle detector.  Plant: T3 holds G2;
  // T2 holds G1 (S); T1 parks wanting X on G1; T2 parks wanting X on G2.
  // T3 then requests S on G1: compatible with holder T2 but deferred to
  // the older X waiter T1 — closing T3→T1→T2→T3, so T3 must abort.
  LockManager locks(LockManager::DeadlockPolicy::kCycleDetect);
  const Granule g1 = Granule::Relation("G1");
  const Granule g2 = Granule::Relation("G2");
  ASSERT_TRUE(locks.Acquire(3, g2, LockMode::kExclusive).ok());
  ASSERT_TRUE(locks.Acquire(2, g1, LockMode::kShared).ok());
  std::thread t1([&] {
    const Status st = locks.Acquire(1, g1, LockMode::kExclusive);
    if (!st.ok()) locks.ReleaseAll(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread t2([&] {
    const Status st = locks.Acquire(2, g2, LockMode::kExclusive);
    if (!st.ok()) locks.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const Status st = locks.Acquire(3, g1, LockMode::kShared);
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_NE(st.ToString().find("deadlock victim"), std::string::npos);
  locks.ReleaseAll(3);
  t2.join();  // granted X on G2 once the victim released it
  locks.ReleaseAll(2);
  t1.join();  // granted X on G1 once T2 released its S
  locks.ReleaseAll(1);
}

TEST(TxnLockManagerTest, CycleDetectAbortsExactlyOneVictim) {
  LockManager locks(LockManager::DeadlockPolicy::kCycleDetect);
  const Granule a = Granule::Relation("A");
  const Granule b = Granule::Relation("B");
  ASSERT_TRUE(locks.Acquire(1, a, LockMode::kExclusive).ok());
  ASSERT_TRUE(locks.Acquire(2, b, LockMode::kExclusive).ok());
  // Cross requests: whichever side closes the cycle aborts itself; the
  // other must then be granted once the victim releases.
  Status first_status, second_status;
  std::thread t1([&] {
    first_status = locks.Acquire(1, b, LockMode::kExclusive);
    if (!first_status.ok()) locks.ReleaseAll(1);
  });
  std::thread t2([&] {
    second_status = locks.Acquire(2, a, LockMode::kExclusive);
    if (!second_status.ok()) locks.ReleaseAll(2);
  });
  t1.join();
  t2.join();
  const bool first_aborted = !first_status.ok();
  const bool second_aborted = !second_status.ok();
  EXPECT_NE(first_aborted, second_aborted)
      << "exactly one transaction must be the deadlock victim: "
      << first_status.ToString() << " / " << second_status.ToString();
  const Status& victim = first_aborted ? first_status : second_status;
  EXPECT_EQ(victim.code(), StatusCode::kAborted);
  EXPECT_NE(victim.ToString().find("deadlock victim"), std::string::npos);
}

TEST(TxnLockManagerTest, PlantedDeadlockIsVisibleInWaitsForGraph) {
  // kBlock has no arbiter, so a genuine cross wait really deadlocks; the
  // waits-for probe must see the cycle, and wounding one party breaks it.
  LockManager locks(LockManager::DeadlockPolicy::kBlock);
  const Granule a = Granule::Relation("A");
  const Granule b = Granule::Relation("B");
  ASSERT_TRUE(locks.Acquire(1, a, LockMode::kExclusive).ok());
  ASSERT_TRUE(locks.Acquire(2, b, LockMode::kExclusive).ok());
  Status blocked_status, victim_status;
  std::thread blocked([&] {
    blocked_status = locks.Acquire(1, b, LockMode::kExclusive);
  });
  std::thread victim([&] {
    victim_status = locks.Acquire(2, a, LockMode::kExclusive);
    if (!victim_status.ok()) locks.ReleaseAll(2);
  });
  std::vector<TxnId> cycle;
  SpinUntil([&] {
    cycle = locks.FindWaitsForCycle();
    return !cycle.empty();
  });
  EXPECT_GE(cycle.size(), 1u);
  for (const TxnId txn : cycle) {
    EXPECT_TRUE(txn == 1 || txn == 2) << "unexpected txn " << txn;
  }
  locks.WoundForTesting(2);
  victim.join();
  EXPECT_EQ(victim_status.code(), StatusCode::kAborted);
  blocked.join();
  EXPECT_TRUE(blocked_status.ok());
  EXPECT_TRUE(locks.Holds(1, b, LockMode::kExclusive));
  EXPECT_TRUE(locks.FindWaitsForCycle().empty());
}

}  // namespace
}  // namespace procsim::txn
