// TxnManager group-commit semantics around failure: a mid-group apply
// failure must retire the already-committed prefix exactly once (no double
// apply, no duplicate WAL records), terminate the failing transaction, and
// poison the manager — plus TxnEngine::Run's guarantee that a failed op
// never leaks an open transaction holding the R1 lock.
#include "txn/txn_manager.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "sim/workload.h"
#include "storage/wal.h"
#include "txn/engine.h"
#include "txn/lock_manager.h"
#include "util/status.h"

namespace procsim::txn {
namespace {

sim::WorkloadOp SeededUpdate(uint64_t seed) {
  return sim::WorkloadOp{sim::WorkloadOp::Kind::kUpdate, seed};
}

std::size_t CountRecords(const std::vector<storage::WalRecord>& records,
                         storage::WalRecord::Kind kind, TxnId txn) {
  std::size_t count = 0;
  for (const storage::WalRecord& record : records) {
    if (record.kind == kind && record.txn == txn) ++count;
  }
  return count;
}

TEST(TxnManagerTest, FullGroupCommitsEveryTransaction) {
  storage::WriteAheadLog wal;
  LockManager locks;
  TxnManager manager(&wal, &locks, nullptr, TxnManager::Options{2});
  std::map<TxnId, int> applies;
  const auto apply_ok = [&](TxnId txn,
                            const std::vector<sim::WorkloadOp>&) -> Status {
    ++applies[txn];
    return Status::OK();
  };
  const TxnId a = manager.Begin();
  const TxnId b = manager.Begin();
  ASSERT_TRUE(manager.QueueOp(a, SeededUpdate(7)).ok());
  ASSERT_TRUE(manager.QueueOp(b, SeededUpdate(8)).ok());
  ASSERT_TRUE(manager.Commit(a, apply_ok).ok());
  ASSERT_TRUE(manager.Commit(b, apply_ok).ok());  // fills the group: flush
  EXPECT_EQ(manager.commits(), 2u);
  EXPECT_EQ(manager.pending_commits(), 0u);
  EXPECT_FALSE(manager.poisoned());
  EXPECT_EQ(applies[a], 1);
  EXPECT_EQ(applies[b], 1);
  EXPECT_TRUE(wal.CheckConsistency().ok());
}

TEST(TxnManagerTest, ApplyFailureRetiresPrefixOnceAndPoisons) {
  storage::WriteAheadLog wal;
  LockManager locks;
  TxnManager manager(&wal, &locks, nullptr, TxnManager::Options{3});
  std::map<TxnId, int> applies;
  const auto apply_ok = [&](TxnId txn,
                            const std::vector<sim::WorkloadOp>&) -> Status {
    ++applies[txn];
    return Status::OK();
  };
  const auto apply_fail = [&](TxnId txn,
                              const std::vector<sim::WorkloadOp>&) -> Status {
    ++applies[txn];
    return Status::Internal("planted apply failure");
  };
  const TxnId a = manager.Begin();
  const TxnId b = manager.Begin();
  const TxnId c = manager.Begin();
  ASSERT_TRUE(manager.QueueOp(a, SeededUpdate(7)).ok());
  ASSERT_TRUE(manager.QueueOp(b, SeededUpdate(8)).ok());
  ASSERT_TRUE(manager.QueueOp(c, SeededUpdate(9)).ok());
  ASSERT_TRUE(manager.Commit(a, apply_ok).ok());
  ASSERT_TRUE(manager.Commit(b, apply_fail).ok());
  const Status flushed = manager.Commit(c, apply_ok);  // fills: flush fails
  EXPECT_EQ(flushed.code(), StatusCode::kInternal);

  // a reached its commit point and is retired; b terminated with kAbort;
  // c never ran and stays queued behind the poison.
  EXPECT_TRUE(manager.poisoned());
  EXPECT_EQ(manager.commits(), 1u);
  EXPECT_EQ(manager.pending_commits(), 1u);
  EXPECT_EQ(applies[a], 1);
  EXPECT_EQ(applies[b], 1);
  EXPECT_EQ(applies[c], 0);

  // A retried flush must NOT re-apply a's effects or re-log its records —
  // that would double-apply mutations and break the WAL's terminate-once
  // invariant.
  const std::size_t wal_size = wal.size();
  const Status retried = manager.Flush();
  EXPECT_EQ(retried.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(applies[a], 1);
  EXPECT_EQ(applies[c], 0);
  EXPECT_EQ(wal.size(), wal_size);

  const std::vector<storage::WalRecord> records = wal.Snapshot();
  EXPECT_EQ(CountRecords(records, storage::WalRecord::Kind::kMutation, a), 1u);
  EXPECT_EQ(CountRecords(records, storage::WalRecord::Kind::kCommit, a), 1u);
  EXPECT_EQ(CountRecords(records, storage::WalRecord::Kind::kAbort, b), 1u);
  EXPECT_EQ(CountRecords(records, storage::WalRecord::Kind::kCommit, b), 0u);
  EXPECT_EQ(CountRecords(records, storage::WalRecord::Kind::kCommit, c), 0u);
  EXPECT_TRUE(wal.CheckConsistency().ok());
}

TxnEngine::Options TinyOptions(uint64_t seed) {
  TxnEngine::Options options;
  options.params.N = 60;
  options.params.f_R2 = 0.1;
  options.params.f_R3 = 0.1;
  options.params.l = 2;
  options.params.N1 = 2;
  options.params.N2 = 2;
  options.params.SF = 0.5;
  options.params.f = 0.1;
  options.params.f2 = 0.3;
  options.seed = seed;
  options.mix.update_batch = static_cast<std::size_t>(options.params.l);
  return options;
}

TEST(TxnEngineRunTest, FailedAutoCommitOpDoesNotLeakItsTransaction) {
  Result<std::unique_ptr<TxnEngine>> engine = TxnEngine::Create(TinyOptions(5));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // An unseeded mutation is rejected by QueueOp AFTER the implicit
  // transaction has taken R1 exclusively; the rollback must release it.
  const Status failed = engine.ValueOrDie()->Run(
      {sim::WorkloadOp{sim::WorkloadOp::Kind::kUpdate, 0}});
  EXPECT_EQ(failed.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.ValueOrDie()->locks().held_count(1), 0u);
  // Without the rollback this access would park on R1 forever.
  EXPECT_TRUE(engine.ValueOrDie()
                  ->Run({sim::WorkloadOp{sim::WorkloadOp::Kind::kAccess, 1}})
                  .ok());
  EXPECT_TRUE(engine.ValueOrDie()->Flush().ok());
  EXPECT_TRUE(engine.ValueOrDie()->wal().CheckConsistency().ok());
}

TEST(TxnEngineRunTest, ErrorInsideExplicitTransactionRollsItBack) {
  Result<std::unique_ptr<TxnEngine>> engine = TxnEngine::Create(TinyOptions(6));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const Status failed = engine.ValueOrDie()->Run(
      {sim::WorkloadOp{sim::WorkloadOp::Kind::kBegin, 0},
       sim::WorkloadOp{sim::WorkloadOp::Kind::kUpdate, 0}});
  EXPECT_EQ(failed.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.ValueOrDie()->locks().held_count(1), 0u);
  EXPECT_TRUE(engine.ValueOrDie()
                  ->Run({sim::WorkloadOp{sim::WorkloadOp::Kind::kUpdate, 11}})
                  .ok());
  EXPECT_TRUE(engine.ValueOrDie()->Flush().ok());
  EXPECT_TRUE(engine.ValueOrDie()->wal().CheckConsistency().ok());
}

}  // namespace
}  // namespace procsim::txn
