#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "util/cost_meter.h"
#include "util/locality.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace procsim {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.UniformInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(LocalityTest, HotClassSizing) {
  LocalityGenerator gen(100, 0.2);
  EXPECT_EQ(gen.hot_count(), 20u);
  EXPECT_TRUE(gen.IsHot(0));
  EXPECT_TRUE(gen.IsHot(19));
  EXPECT_FALSE(gen.IsHot(20));
}

TEST(LocalityTest, EightyTwentyReferenceSplit) {
  LocalityGenerator gen(100, 0.2);
  Rng rng(21);
  int hot_refs = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (gen.IsHot(gen.NextReference(&rng))) ++hot_refs;
  }
  // 20% of objects should draw ~80% of references.
  EXPECT_NEAR(static_cast<double>(hot_refs) / trials, 0.8, 0.01);
}

TEST(LocalityTest, UniformWhenZIsHalf) {
  LocalityGenerator gen(10, 0.5);
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[gen.NextReference(&rng)];
  for (int count : counts) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.1, 0.01);
  }
}

TEST(LocalityTest, SingleObjectAlwaysReferenced) {
  LocalityGenerator gen(1, 0.2);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(gen.NextReference(&rng), 0u);
}

TEST(CostMeterTest, ChargesAtConfiguredRates) {
  CostConstants constants;
  constants.cpu_screen_ms = 2.0;
  constants.disk_io_ms = 10.0;
  constants.delta_maintenance_ms = 0.5;
  CostMeter meter(constants);
  meter.ChargeDiskRead(3);
  meter.ChargeDiskWrite();
  meter.ChargeScreen(4);
  meter.ChargeDeltaMaintenance(2);
  meter.ChargeFixed(1.5);
  EXPECT_DOUBLE_EQ(meter.total_ms(), 3 * 10.0 + 10.0 + 4 * 2.0 + 2 * 0.5 + 1.5);
  EXPECT_EQ(meter.disk_reads(), 3u);
  EXPECT_EQ(meter.disk_writes(), 1u);
  EXPECT_EQ(meter.screens(), 4u);
  EXPECT_EQ(meter.delta_ops(), 2u);
  meter.Reset();
  EXPECT_DOUBLE_EQ(meter.total_ms(), 0.0);
  EXPECT_EQ(meter.disk_reads(), 0u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"x", "value"});
  table.AddRow(std::vector<std::string>{"1", "10"});
  table.AddRow(std::vector<std::string>{"100", "2"});
  std::ostringstream out;
  table.Print(out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("  x  value"), std::string::npos);
  EXPECT_NE(rendered.find("  1     10"), std::string::npos);
  EXPECT_NE(rendered.find("100      2"), std::string::npos);
}

TEST(TablePrinterTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.5, 3), "1.5");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 3), "2");
  EXPECT_EQ(TablePrinter::FormatDouble(0.125, 3), "0.125");
  EXPECT_EQ(TablePrinter::FormatDouble(0.1239, 3), "0.124");
}

}  // namespace
}  // namespace procsim
