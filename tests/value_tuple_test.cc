#include <gtest/gtest.h>

#include "relational/tuple.h"
#include "relational/value.h"

namespace procsim::rel {
namespace {

TEST(ValueTest, TypeTagsAndAccessors) {
  Value i(int64_t{42});
  Value d(3.5);
  Value s("hello");
  EXPECT_TRUE(i.is_int64());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt64(), 42);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 3.5);
  EXPECT_EQ(s.AsString(), "hello");
}

TEST(ValueTest, ComparisonWithinType) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(int64_t{2}));
  EXPECT_TRUE(Value(int64_t{2}) == Value(int64_t{2}));
  EXPECT_TRUE(Value("abc") < Value("abd"));
  EXPECT_TRUE(Value(1.0) < Value(1.5));
}

TEST(ValueTest, CrossTypeComparisonOrdersByTag) {
  // Deterministic, never equal: int64 < double < string by tag index.
  EXPECT_TRUE(Value(int64_t{5}) < Value(0.1));
  EXPECT_TRUE(Value(0.1) < Value("a"));
  EXPECT_FALSE(Value(int64_t{5}) == Value(5.0));
}

TEST(ValueTest, SerializeRoundTrip) {
  for (const Value& value :
       {Value(int64_t{-7}), Value(2.25), Value("päyload with ünicode"),
        Value(std::string())}) {
    std::vector<uint8_t> bytes;
    value.SerializeTo(&bytes);
    std::size_t cursor = 0;
    Result<Value> restored = Value::DeserializeFrom(bytes, &cursor);
    ASSERT_TRUE(restored.ok());
    EXPECT_TRUE(restored.ValueOrDie() == value);
    EXPECT_EQ(cursor, bytes.size());
  }
}

TEST(ValueTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> bytes{99};  // unknown tag
  std::size_t cursor = 0;
  EXPECT_FALSE(Value::DeserializeFrom(bytes, &cursor).ok());
  bytes = {0, 1, 2};  // int64 tag but truncated payload
  cursor = 0;
  EXPECT_FALSE(Value::DeserializeFrom(bytes, &cursor).ok());
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{10}).Hash(), Value(int64_t{10}).Hash());
  EXPECT_NE(Value(int64_t{10}).Hash(), Value(int64_t{11}).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
}

TEST(SchemaTest, ColumnLookup) {
  Schema schema({Column{"a", ValueType::kInt64},
                 Column{"b", ValueType::kString}});
  EXPECT_EQ(schema.num_columns(), 2u);
  EXPECT_EQ(schema.ColumnIndex("b").ValueOrDie(), 1u);
  EXPECT_EQ(schema.ColumnIndex("z").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ConcatAndPrefix) {
  Schema left({Column{"a", ValueType::kInt64}});
  Schema right({Column{"b", ValueType::kInt64}});
  Schema joined = Schema::Concat(left.WithPrefix("R1"), right.WithPrefix("R2"));
  EXPECT_EQ(joined.num_columns(), 2u);
  EXPECT_EQ(joined.column(0).name, "R1.a");
  EXPECT_EQ(joined.column(1).name, "R2.b");
}

TEST(TupleTest, TypeChecksAgainstSchema) {
  Schema schema({Column{"a", ValueType::kInt64},
                 Column{"b", ValueType::kString}});
  EXPECT_TRUE(Tuple({Value(int64_t{1}), Value("x")}).TypeChecks(schema));
  EXPECT_FALSE(Tuple({Value("x"), Value(int64_t{1})}).TypeChecks(schema));
  EXPECT_FALSE(Tuple({Value(int64_t{1})}).TypeChecks(schema));
}

TEST(TupleTest, SerializeRoundTripWithPadding) {
  Tuple tuple({Value(int64_t{1}), Value("abc"), Value(2.0)});
  const std::vector<uint8_t> natural = tuple.Serialize();
  const std::vector<uint8_t> padded = tuple.Serialize(100);
  EXPECT_EQ(padded.size(), 100u);
  EXPECT_LT(natural.size(), padded.size());
  Result<Tuple> from_padded = Tuple::Deserialize(padded);
  ASSERT_TRUE(from_padded.ok());
  EXPECT_TRUE(from_padded.ValueOrDie() == tuple);
}

TEST(TupleTest, ConcatPreservesOrder) {
  Tuple left({Value(int64_t{1}), Value(int64_t{2})});
  Tuple right({Value(int64_t{3})});
  Tuple joined = Tuple::Concat(left, right);
  ASSERT_EQ(joined.arity(), 3u);
  EXPECT_EQ(joined.value(0).AsInt64(), 1);
  EXPECT_EQ(joined.value(2).AsInt64(), 3);
}

TEST(TupleTest, HashStableAndDiscriminating) {
  Tuple a({Value(int64_t{1}), Value("x")});
  Tuple b({Value(int64_t{1}), Value("x")});
  Tuple c({Value(int64_t{2}), Value("x")});
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), c.Hash());
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(TupleTest, SetValueMutates) {
  Tuple tuple({Value(int64_t{1})});
  tuple.set_value(0, Value(int64_t{9}));
  EXPECT_EQ(tuple.value(0).AsInt64(), 9);
}

}  // namespace
}  // namespace procsim::rel
