// WriteAheadLog unit coverage: LSN sequencing, payload round-trips, force
// metering, prefix truncation with its recovery guard, ResetFrom (the
// recover-the-recovered seed path) and the structural consistency checker.
#include "storage/wal.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/cost_meter.h"
#include "util/status.h"

namespace procsim::storage {
namespace {

TEST(WalTest, AppendsSequenceLsnsAndRoundTripPayloads) {
  WriteAheadLog wal;
  EXPECT_EQ(wal.next_lsn(), 1u);
  EXPECT_EQ(wal.AppendBegin(7), 1u);
  EXPECT_EQ(wal.AppendMutation(7, 3, 12345), 2u);
  EXPECT_EQ(wal.AppendInvalidate(7, 4), 3u);
  EXPECT_EQ(wal.AppendValidate(7, 5), 4u);
  EXPECT_EQ(wal.AppendCommit(7), 5u);
  EXPECT_EQ(wal.AppendAbort(8), 6u);
  EXPECT_EQ(wal.AppendCheckpoint(42, {true, false, true}), 7u);
  EXPECT_EQ(wal.size(), 7u);
  EXPECT_EQ(wal.next_lsn(), 8u);

  const std::vector<WalRecord> records = wal.Snapshot();
  ASSERT_EQ(records.size(), 7u);
  EXPECT_EQ(records[0].kind, WalRecord::Kind::kBegin);
  EXPECT_EQ(records[0].txn, 7u);
  EXPECT_EQ(records[1].kind, WalRecord::Kind::kMutation);
  EXPECT_EQ(records[1].a, 3u);
  EXPECT_EQ(records[1].b, 12345u);
  EXPECT_EQ(records[2].kind, WalRecord::Kind::kInvalidate);
  EXPECT_EQ(records[2].a, 4u);
  EXPECT_EQ(records[3].kind, WalRecord::Kind::kValidate);
  EXPECT_EQ(records[4].kind, WalRecord::Kind::kCommit);
  EXPECT_EQ(records[5].kind, WalRecord::Kind::kAbort);
  EXPECT_EQ(records[5].txn, 8u);
  EXPECT_EQ(records[6].kind, WalRecord::Kind::kCheckpoint);
  EXPECT_EQ(records[6].txn, 0u);
  EXPECT_EQ(records[6].a, 42u);
  EXPECT_EQ(records[6].bitmap, (std::vector<bool>{true, false, true}));
  EXPECT_TRUE(wal.CheckConsistency().ok());
}

TEST(WalTest, ForceChargesTheConfiguredCost) {
  CostMeter meter;
  WriteAheadLog wal(&meter, /*force_cost_ms=*/30.0);
  EXPECT_DOUBLE_EQ(wal.force_cost_ms(), 30.0);
  wal.Force();
  wal.Force();
  EXPECT_DOUBLE_EQ(meter.total_ms(), 60.0);
}

TEST(WalTest, ZeroCostForceChargesNothing) {
  CostMeter meter;
  WriteAheadLog wal(&meter, /*force_cost_ms=*/0.0);
  wal.Force();
  EXPECT_DOUBLE_EQ(meter.total_ms(), 0.0);
}

TEST(WalTest, TruncateDropsPrefixAndGuardsLsnSpace) {
  WriteAheadLog wal;
  wal.AppendBegin(1);
  wal.AppendMutation(1, 1, 99);
  wal.AppendCommit(1);
  wal.AppendBegin(2);
  wal.TruncateThrough(3);
  EXPECT_EQ(wal.size(), 1u);
  EXPECT_EQ(wal.truncated_through(), 3u);
  EXPECT_EQ(wal.Snapshot().front().kind, WalRecord::Kind::kBegin);
  EXPECT_EQ(wal.Snapshot().front().txn, 2u);
  // LSNs keep advancing past the truncation point; the checker accepts the
  // surviving suffix.
  EXPECT_EQ(wal.AppendCommit(2), 5u);
  EXPECT_TRUE(wal.CheckConsistency().ok());
  // Truncation points never regress.
  wal.TruncateThrough(2);
  EXPECT_EQ(wal.truncated_through(), 3u);
}

TEST(WalTest, ResetFromSeedsRecordsAndResumesLsns) {
  WriteAheadLog original;
  original.AppendBegin(1);
  original.AppendMutation(1, 2, 777);
  original.AppendCommit(1);

  WriteAheadLog revived;
  ASSERT_TRUE(revived.ResetFrom(original.Snapshot()).ok());
  EXPECT_EQ(revived.size(), 3u);
  EXPECT_EQ(revived.next_lsn(), 4u);
  EXPECT_TRUE(revived.CheckConsistency().ok());
  // New history continues the sequence without colliding.
  EXPECT_EQ(revived.AppendBegin(2), 4u);

  // A sliced prefix is equally valid seed material (the crash harness cuts
  // at record boundaries).
  std::vector<WalRecord> prefix = original.Snapshot();
  prefix.resize(2);
  WriteAheadLog from_prefix;
  ASSERT_TRUE(from_prefix.ResetFrom(prefix).ok());
  EXPECT_EQ(from_prefix.next_lsn(), 3u);
}

TEST(WalTest, ResetFromRejectsNonMonotonicLsns) {
  WriteAheadLog wal;
  wal.AppendBegin(1);
  wal.AppendCommit(1);
  std::vector<WalRecord> shuffled = wal.Snapshot();
  std::swap(shuffled[0], shuffled[1]);
  WriteAheadLog target;
  const Status st = target.ResetFrom(shuffled);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(target.size(), 0u);  // the failed reset left nothing behind
}

TEST(WalTest, ConsistencyRejectsDoubleTermination) {
  WriteAheadLog wal;
  wal.AppendBegin(1);
  wal.AppendCommit(1);
  wal.AppendCommit(1);  // second commit point for the same transaction
  const Status st = wal.CheckConsistency();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("terminated twice"), std::string::npos);

  WriteAheadLog mixed;
  mixed.AppendBegin(3);
  mixed.AppendCommit(3);
  mixed.AppendAbort(3);  // commit then abort is equally malformed
  EXPECT_FALSE(mixed.CheckConsistency().ok());
}

}  // namespace
}  // namespace procsim::storage
