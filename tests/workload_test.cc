#include "sim/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace procsim::sim {
namespace {

cost::Params TinyParams() {
  cost::Params p;
  p.N = 1000;
  p.N1 = 8;
  p.N2 = 8;
  p.f = 0.02;   // 20-key intervals
  p.f2 = 0.25;
  p.SF = 0.5;
  return p;
}

TEST(WorkloadBuilderTest, RelationSizesMatchParameters) {
  Result<std::unique_ptr<Database>> built =
      BuildDatabase(TinyParams(), cost::ProcModel::kModel1, 1);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Database& db = *built.ValueOrDie();
  EXPECT_EQ(db.catalog->GetRelation("R1").ValueOrDie()->tuple_count(), 1000u);
  EXPECT_EQ(db.catalog->GetRelation("R2").ValueOrDie()->tuple_count(), 100u);
  EXPECT_EQ(db.catalog->GetRelation("R3").ValueOrDie()->tuple_count(), 100u);
  EXPECT_EQ(db.r1_rids.size(), 1000u);
  // Clustered: 1000 tuples at 40/page = 25 heap pages.
  EXPECT_EQ(db.catalog->GetRelation("R1").ValueOrDie()->heap_page_count(),
            25u);
}

TEST(WorkloadBuilderTest, ProcedurePopulationAndShapes) {
  Result<std::unique_ptr<Database>> built =
      BuildDatabase(TinyParams(), cost::ProcModel::kModel1, 2);
  ASSERT_TRUE(built.ok());
  Database& db = *built.ValueOrDie();
  ASSERT_EQ(db.procedures.size(), 16u);
  std::size_t selections = 0;
  std::size_t joins = 0;
  for (const auto& procedure : db.procedures) {
    // Ids are dense and match positions after the shuffle.
    EXPECT_EQ(procedure.id, static_cast<std::size_t>(&procedure - db.procedures.data()));
    if (procedure.IsSelectionOnly()) {
      ++selections;
    } else {
      ++joins;
      EXPECT_EQ(procedure.query.joins.size(), 1u);
      EXPECT_EQ(procedure.query.joins[0].relation, "R2");
    }
    // Interval width = f*N.
    EXPECT_EQ(procedure.query.base.hi - procedure.query.base.lo + 1, 20);
  }
  EXPECT_EQ(selections, 8u);
  EXPECT_EQ(joins, 8u);
}

TEST(WorkloadBuilderTest, Model2AddsThirdRelationStage) {
  Result<std::unique_ptr<Database>> built =
      BuildDatabase(TinyParams(), cost::ProcModel::kModel2, 2);
  ASSERT_TRUE(built.ok());
  for (const auto& procedure : built.ValueOrDie()->procedures) {
    if (!procedure.IsSelectionOnly()) {
      ASSERT_EQ(procedure.query.joins.size(), 2u);
      EXPECT_EQ(procedure.query.joins[1].relation, "R3");
    }
  }
}

TEST(WorkloadBuilderTest, SharingFactorCreatesVerbatimIntervalReuse) {
  cost::Params params = TinyParams();
  params.SF = 1.0;
  params.N1 = 10;
  params.N2 = 10;
  Result<std::unique_ptr<Database>> built =
      BuildDatabase(params, cost::ProcModel::kModel1, 3);
  ASSERT_TRUE(built.ok());
  std::set<std::pair<int64_t, int64_t>> p1_intervals;
  for (const auto& procedure : built.ValueOrDie()->procedures) {
    if (procedure.IsSelectionOnly()) {
      p1_intervals.emplace(procedure.query.base.lo, procedure.query.base.hi);
    }
  }
  for (const auto& procedure : built.ValueOrDie()->procedures) {
    if (!procedure.IsSelectionOnly()) {
      EXPECT_TRUE(p1_intervals.contains(
          {procedure.query.base.lo, procedure.query.base.hi}))
          << procedure.name << " does not share a P1 interval at SF=1";
    }
  }
}

TEST(WorkloadBuilderTest, ZeroSharingProducesDistinctResiduals) {
  cost::Params params = TinyParams();
  params.SF = 0.0;
  Result<std::unique_ptr<Database>> built =
      BuildDatabase(params, cost::ProcModel::kModel1, 4);
  ASSERT_TRUE(built.ok());
  // Each P2 gets its own C_f2 interval; widths all equal f2 * domain.
  for (const auto& procedure : built.ValueOrDie()->procedures) {
    if (procedure.IsSelectionOnly()) continue;
    const auto& terms = procedure.query.joins[0].residual.terms();
    ASSERT_EQ(terms.size(), 2u);
    const int64_t lo = terms[0].constant.AsInt64();
    const int64_t hi = terms[1].constant.AsInt64();
    EXPECT_EQ(hi - lo + 1,
              static_cast<int64_t>(params.f2 * kSelectivityDomain));
  }
}

TEST(WorkloadBuilderTest, DeterministicForSeed) {
  const auto a = BuildDatabase(TinyParams(), cost::ProcModel::kModel1, 9);
  const auto b = BuildDatabase(TinyParams(), cost::ProcModel::kModel1, 9);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto& pa = a.ValueOrDie()->procedures;
  const auto& pb = b.ValueOrDie()->procedures;
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].name, pb[i].name);
    EXPECT_EQ(pa[i].query.base.lo, pb[i].query.base.lo);
  }
}

TEST(WorkloadBuilderTest, BuildIsUnmetered) {
  Result<std::unique_ptr<Database>> built =
      BuildDatabase(TinyParams(), cost::ProcModel::kModel1, 5);
  ASSERT_TRUE(built.ok());
  EXPECT_DOUBLE_EQ(built.ValueOrDie()->meter.total_ms(), 0.0);
}

TEST(WorkloadBuilderTest, ExpectedProcedureCardinalities) {
  // P1 procedures should contain ~f*N tuples; P2 ~f*f2*N in expectation.
  cost::Params params = TinyParams();
  Result<std::unique_ptr<Database>> built =
      BuildDatabase(params, cost::ProcModel::kModel1, 6);
  ASSERT_TRUE(built.ok());
  Database& db = *built.ValueOrDie();
  double p1_total = 0;
  double p2_total = 0;
  std::size_t p1_count = 0;
  std::size_t p2_count = 0;
  for (const auto& procedure : db.procedures) {
    storage::MeteringGuard guard(db.disk.get());
    const auto rows = db.executor->Execute(procedure.query).ValueOrDie();
    if (procedure.IsSelectionOnly()) {
      p1_total += static_cast<double>(rows.size());
      ++p1_count;
    } else {
      p2_total += static_cast<double>(rows.size());
      ++p2_count;
    }
  }
  EXPECT_DOUBLE_EQ(p1_total / static_cast<double>(p1_count),
                   params.f * params.N);  // exact: interval of f*N keys
  // Join selectivity is stochastic; expect within 3x of f*f2*N.
  const double expected_p2 = params.f * params.f2 * params.N;
  const double avg_p2 = p2_total / static_cast<double>(p2_count);
  EXPECT_GT(avg_p2, expected_p2 / 3.0);
  EXPECT_LT(avg_p2, expected_p2 * 3.0);
}

TEST(UpdateTransactionTest, ModifiesRequestedTupleCountInPlace) {
  Result<std::unique_ptr<Database>> built =
      BuildDatabase(TinyParams(), cost::ProcModel::kModel1, 7);
  ASSERT_TRUE(built.ok());
  Database& db = *built.ValueOrDie();
  Rng rng(1);
  Result<std::vector<std::pair<rel::Tuple, rel::Tuple>>> changes =
      ApplyUpdateTransaction(&db, 5, &rng);
  ASSERT_TRUE(changes.ok()) << changes.status().ToString();
  EXPECT_EQ(changes.ValueOrDie().size(), 5u);
  // Table cardinality unchanged (in-place modification).
  EXPECT_EQ(db.catalog->GetRelation("R1").ValueOrDie()->tuple_count(), 1000u);
  // The write path is unmetered.
  EXPECT_DOUBLE_EQ(db.meter.total_ms(), 0.0);
  // New keys stay in the key domain.
  for (const auto& [old_tuple, new_tuple] : changes.ValueOrDie()) {
    const int64_t key = new_tuple.value(R1Columns::kKey).AsInt64();
    EXPECT_GE(key, 0);
    EXPECT_LT(key, 1000);
  }
}

TEST(WorkloadOpTest, TxnMarkersAreNeitherMutationsNorAccesses) {
  // The classifiers partition the op kinds: markers vs mutations vs access.
  EXPECT_TRUE(IsTxnMarker(WorkloadOp::Kind::kBegin));
  EXPECT_TRUE(IsTxnMarker(WorkloadOp::Kind::kCommit));
  EXPECT_TRUE(IsTxnMarker(WorkloadOp::Kind::kAbort));
  EXPECT_FALSE(IsTxnMarker(WorkloadOp::Kind::kAccess));
  EXPECT_FALSE(IsTxnMarker(WorkloadOp::Kind::kUpdate));

  EXPECT_FALSE(IsMutationOp(WorkloadOp::Kind::kBegin));
  EXPECT_FALSE(IsMutationOp(WorkloadOp::Kind::kCommit));
  EXPECT_FALSE(IsMutationOp(WorkloadOp::Kind::kAbort));
  EXPECT_FALSE(IsMutationOp(WorkloadOp::Kind::kAccess));
  EXPECT_TRUE(IsMutationOp(WorkloadOp::Kind::kUpdate));
  EXPECT_TRUE(IsMutationOp(WorkloadOp::Kind::kInsert));
  EXPECT_TRUE(IsMutationOp(WorkloadOp::Kind::kDelete));
  EXPECT_TRUE(IsMutationOp(WorkloadOp::Kind::kSilentUpdate));
}

TEST(WorkloadOpTest, MarkerKindsHaveNames) {
  EXPECT_STREQ(WorkloadOpKindName(WorkloadOp::Kind::kBegin), "kBegin");
  EXPECT_STREQ(WorkloadOpKindName(WorkloadOp::Kind::kCommit), "kCommit");
  EXPECT_STREQ(WorkloadOpKindName(WorkloadOp::Kind::kAbort), "kAbort");
}

TEST(WorkloadOpTest, MarkerOpsAreRejectedByApplyMutationOp) {
  Result<std::unique_ptr<Database>> built =
      BuildDatabase(TinyParams(), cost::ProcModel::kModel1, 7);
  ASSERT_TRUE(built.ok());
  WorkloadMix mix;
  // Markers are the stream executor's business, exactly like accesses.
  for (const WorkloadOp::Kind kind :
       {WorkloadOp::Kind::kBegin, WorkloadOp::Kind::kCommit,
        WorkloadOp::Kind::kAbort, WorkloadOp::Kind::kAccess}) {
    Result<MutationResult> applied = ApplyMutationOp(
        built.ValueOrDie().get(), WorkloadOp{kind, 0}, mix, nullptr);
    EXPECT_FALSE(applied.ok()) << WorkloadOpKindName(kind);
  }
}

}  // namespace
}  // namespace procsim::sim
