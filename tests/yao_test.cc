#include "util/yao.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace procsim {
namespace {

TEST(CardenasTest, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(CardenasApproximation(10, 0), 0.0);
  // One record accessed touches one page in expectation... m*(1-(1-1/m)).
  EXPECT_DOUBLE_EQ(CardenasApproximation(10, 1), 1.0);
  // As k -> infinity, every page is touched.
  EXPECT_NEAR(CardenasApproximation(10, 100000), 10.0, 1e-9);
}

TEST(YaoExactTest, BasicValues) {
  // k = 0 touches nothing; k = n touches every page.
  EXPECT_DOUBLE_EQ(YaoExact(100, 10, 0), 0.0);
  EXPECT_DOUBLE_EQ(YaoExact(100, 10, 100), 10.0);
  // Selecting 1 record from any layout touches exactly 1 page.
  EXPECT_NEAR(YaoExact(100, 10, 1), 1.0, 1e-12);
}

TEST(YaoExactTest, MoreRecordsThanFitOutsideOneBlockTouchesAll) {
  // n=20, m=4, p=5: selecting more than n-p=15 records must hit every block.
  EXPECT_DOUBLE_EQ(YaoExact(20, 4, 16), 4.0);
}

TEST(YaoExactTest, CardenasCloseForLargeBlockingFactor) {
  // Appendix A: Cardenas' approximation is very close when n/m > 10.
  const double exact = YaoExact(10000, 100, 250);
  const double approx = CardenasApproximation(100, 250);
  EXPECT_NEAR(exact, approx, exact * 0.02);
}

TEST(YaoEstimateTest, PaperPiecewiseRules) {
  // k <= 1: return k.
  EXPECT_DOUBLE_EQ(YaoEstimate(1000, 25, 0.05), 0.05);
  EXPECT_DOUBLE_EQ(YaoEstimate(1000, 25, 1.0), 1.0);
  // m < 1 and k > 1: a stored object occupies at least one page.
  EXPECT_DOUBLE_EQ(YaoEstimate(10, 0.25, 2), 1.0);
  // 1 <= m < 2 and k > 1: min(k, m).
  EXPECT_DOUBLE_EQ(YaoEstimate(60, 1.5, 5), 1.5);
  EXPECT_DOUBLE_EQ(YaoEstimate(60, 1.5, 1.2), 1.2);
  // Otherwise Cardenas.
  EXPECT_DOUBLE_EQ(YaoEstimate(10000, 250, 50),
                   CardenasApproximation(250, 50));
}

// Property sweep: the estimate is bounded by min(k, m) (for m >= 1) and
// monotone in k.
class YaoPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(YaoPropertyTest, BoundedAndMonotone) {
  const double m = GetParam();
  const double n = m * 40;
  double previous = 0.0;
  for (double k = 0; k <= n; k += n / 64) {
    const double y = YaoEstimate(n, m, k);
    EXPECT_LE(y, std::min(k, std::max(m, 1.0)) + 1e-9)
        << "m=" << m << " k=" << k;
    EXPECT_GE(y + 1e-9, previous) << "m=" << m << " k=" << k;
    previous = y;
  }
}

INSTANTIATE_TEST_SUITE_P(PageCounts, YaoPropertyTest,
                         ::testing::Values(0.25, 1.0, 1.5, 2.0, 10.0, 250.0,
                                           2500.0));

}  // namespace
}  // namespace procsim
