// Golden-figure gate: compares a freshly generated BENCH_<name>.json
// snapshot against its committed golden.  Numeric leaves must agree within
// a relative tolerance (default 2%); strings, booleans and structure must
// match exactly.  The "metrics" subtree is ignored — operational counters
// (cache hits, latch acquisitions) legitimately drift as internals evolve,
// while the figure data they annotate must not.
//
//   bench_diff <golden.json> <candidate.json> [--tolerance 0.02]
//
// Exits 0 when the candidate matches, 1 on any drift (each divergent path
// is reported), 2 on usage or parse errors.  A candidate produced with
// --quick ("quick": true) is refused outright: quick mode shrinks the
// sweeps, so comparing it against a full-mode golden would be meaningless.
//
// Deliberately self-contained (no third-party JSON library): the bench
// reports are machine-written by BenchReport::Write, so this parser only
// has to cover the JSON subset that code emits — objects, arrays, strings
// without exotic escapes, doubles, bools and null.
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array_items;
  // Ordered map: bench reports are written with deterministic key order,
  // but comparison is by key, so ordering differences are not drift.
  std::map<std::string, JsonValue> object_items;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    pos_ = 0;
    if (!ParseValue(out, error)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      *error = "trailing characters at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Fail(std::string* error, const std::string& what) {
    *error = what + " at offset " + std::to_string(pos_);
    return false;
  }

  bool Consume(char c, std::string* error) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(error, std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseLiteral(const std::string& literal, std::string* error) {
    if (text_.compare(pos_, literal.size(), literal) != 0) {
      return Fail(error, "expected '" + literal + "'");
    }
    pos_ += literal.size();
    return true;
  }

  bool ParseString(std::string* out, std::string* error) {
    if (!Consume('"', error)) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail(error, "unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          default:
            return Fail(error, std::string("unsupported escape \\") + esc);
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) return Fail(error, "unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out, std::string* error) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail(error, "unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, error);
    if (c == '[') return ParseArray(out, error);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value, error);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return ParseLiteral("true", error);
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return ParseLiteral("false", error);
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return ParseLiteral("null", error);
    }
    return ParseNumber(out, error);
  }

  bool ParseNumber(JsonValue* out, std::string* error) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail(error, "expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->number_value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail(error, "malformed number '" + token + "'");
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool ParseArray(JsonValue* out, std::string* error) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[', error)) return false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!ParseValue(&item, error)) return false;
      out->array_items.push_back(std::move(item));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']', error);
    }
  }

  bool ParseObject(JsonValue* out, std::string* error) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{', error)) return false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      SkipWhitespace();
      if (!ParseString(&key, error)) return false;
      if (!Consume(':', error)) return false;
      JsonValue value;
      if (!ParseValue(&value, error)) return false;
      out->object_items[key] = std::move(value);
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume('}', error);
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const char* KindName(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

struct DiffContext {
  double tolerance = 0.02;
  int mismatches = 0;
  void Report(const std::string& path, const std::string& what) {
    ++mismatches;
    std::cerr << "DRIFT " << (path.empty() ? "<root>" : path) << ": " << what
              << "\n";
  }
};

std::string FormatNumber(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

// Numeric closeness: relative tolerance against the larger magnitude, with
// a small absolute floor so exact-zero goldens do not demand exact zeros.
bool NumbersClose(double golden, double candidate, double tolerance) {
  const double diff = std::fabs(golden - candidate);
  const double scale = std::max(std::fabs(golden), std::fabs(candidate));
  return diff <= std::max(tolerance * scale, 1e-9);
}

void DiffValues(const JsonValue& golden, const JsonValue& candidate,
                const std::string& path, DiffContext* ctx) {
  if (golden.kind != candidate.kind) {
    ctx->Report(path, std::string("type changed from ") +
                          KindName(golden.kind) + " to " +
                          KindName(candidate.kind));
    return;
  }
  switch (golden.kind) {
    case JsonValue::Kind::kNull:
      return;
    case JsonValue::Kind::kBool:
      if (golden.bool_value != candidate.bool_value) {
        ctx->Report(path, "boolean flipped");
      }
      return;
    case JsonValue::Kind::kNumber:
      if (!NumbersClose(golden.number_value, candidate.number_value,
                        ctx->tolerance)) {
        ctx->Report(path, "expected " + FormatNumber(golden.number_value) +
                              ", got " +
                              FormatNumber(candidate.number_value) +
                              " (tolerance " +
                              FormatNumber(ctx->tolerance * 100) + "%)");
      }
      return;
    case JsonValue::Kind::kString:
      if (golden.string_value != candidate.string_value) {
        ctx->Report(path, "expected \"" + golden.string_value + "\", got \"" +
                              candidate.string_value + "\"");
      }
      return;
    case JsonValue::Kind::kArray: {
      if (golden.array_items.size() != candidate.array_items.size()) {
        ctx->Report(path, "length changed from " +
                              std::to_string(golden.array_items.size()) +
                              " to " +
                              std::to_string(candidate.array_items.size()));
        return;
      }
      for (std::size_t i = 0; i < golden.array_items.size(); ++i) {
        DiffValues(golden.array_items[i], candidate.array_items[i],
                   path + "[" + std::to_string(i) + "]", ctx);
      }
      return;
    }
    case JsonValue::Kind::kObject: {
      for (const auto& [key, value] : golden.object_items) {
        auto it = candidate.object_items.find(key);
        if (it == candidate.object_items.end()) {
          ctx->Report(path, "key \"" + key + "\" disappeared");
          continue;
        }
        DiffValues(value, it->second, path.empty() ? key : path + "." + key,
                   ctx);
      }
      for (const auto& [key, value] : candidate.object_items) {
        (void)value;
        if (golden.object_items.find(key) == golden.object_items.end()) {
          ctx->Report(path, "unexpected new key \"" + key + "\"");
        }
      }
      return;
    }
  }
}

bool LoadJson(const std::string& file, JsonValue* out) {
  std::ifstream in(file);
  if (!in) {
    std::cerr << "bench_diff: cannot open " << file << "\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::string error;
  if (!Parser(text).Parse(out, &error)) {
    std::cerr << "bench_diff: parse error in " << file << ": " << error
              << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double tolerance = 0.02;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance") {
      if (i + 1 >= argc) {
        std::cerr << "bench_diff: --tolerance needs a value\n";
        return 2;
      }
      tolerance = std::atof(argv[++i]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::cerr << "usage: bench_diff <golden.json> <candidate.json> "
                 "[--tolerance 0.02]\n";
    return 2;
  }

  JsonValue golden;
  JsonValue candidate;
  if (!LoadJson(positional[0], &golden) ||
      !LoadJson(positional[1], &candidate)) {
    return 2;
  }

  // A quick-mode snapshot has shrunken sweeps; comparing it to a full-mode
  // golden would report structural drift that means nothing.
  auto quick = candidate.object_items.find("quick");
  if (quick != candidate.object_items.end() &&
      quick->second.kind == JsonValue::Kind::kBool &&
      quick->second.bool_value) {
    std::cerr << "bench_diff: " << positional[1]
              << " was produced with --quick; regenerate in full mode\n";
    return 2;
  }

  // Operational metrics drift legitimately; only figure data is gated.
  golden.object_items.erase("metrics");
  candidate.object_items.erase("metrics");
  // Wall-clock timings are machine-dependent; the deterministic cost
  // scalars next to them are what the golden pins.
  golden.object_items.erase("timings");
  candidate.object_items.erase("timings");

  DiffContext ctx;
  ctx.tolerance = tolerance;
  DiffValues(golden, candidate, "", &ctx);
  if (ctx.mismatches > 0) {
    std::cerr << "bench_diff: " << ctx.mismatches << " drift(s) between "
              << positional[0] << " and " << positional[1] << "\n";
    return 1;
  }
  std::cout << "bench_diff: " << positional[1] << " matches golden\n";
  return 0;
}
