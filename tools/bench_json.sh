#!/usr/bin/env bash
# Golden-figure regression driver.
#
# Runs the deterministic (analytic-model) bench binaries in FULL mode,
# collects their BENCH_<name>.json snapshots into a scratch directory, and
# diffs each against the committed golden in bench/goldens/ with
# tools/bench_diff (2% relative tolerance on numeric leaves, exact match on
# structure and strings, "metrics" subtree ignored).
#
#   tools/bench_json.sh [build-dir]                  # gate (default: build)
#   tools/bench_json.sh [build-dir] --update-goldens # re-baseline
#
# Only the analytic benches are gated: they are pure closed-form cost-model
# evaluations, so their figures are bit-stable across runs and platforms.
# The measured simulator benches (sim_vs_analytic, abl_hybrid, ...) carry
# their own internal assertions and run as `bench-smoke` ctest cases
# instead.
set -eu -o pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build"
UPDATE=0
for arg in "$@"; do
  case "${arg}" in
    --update-goldens) UPDATE=1 ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

GOLDEN_DIR="bench/goldens"
BENCH_DIR="${BUILD_DIR}/bench"
DIFF_BIN="${BUILD_DIR}/tools/bench_diff"

# The golden set: every closed-form bench.  Keep in sync with
# bench/CMakeLists.txt and bench/goldens/.
GOLDEN_BENCHES=(
  fig04_inval_high
  fig05_default
  fig06_large_objects
  fig07_small_objects
  fig08_single_tuple
  fig09_high_locality
  fig10_many_objects
  fig11_sharing_m1
  fig12_regions_m1
  fig13_regions_locality
  fig14_closeness
  fig15_closeness_f2_1
  fig17_default_m2
  fig18_sharing_m2
  fig19_regions_m2
  tbl_cost_components
  tbl_params
  tbl_summary_speedups
  abl_cinval_sweep
  abl_sharing_arity
  abl_yao_exact
  fig20_memory_pressure
  fig21_group_commit
  micro_batch_vs_row
)

if [[ ! -x "${DIFF_BIN}" && "${UPDATE}" -eq 0 ]]; then
  echo "bench_json.sh: ${DIFF_BIN} not built (cmake --build ${BUILD_DIR})" >&2
  exit 2
fi

SCRATCH="$(mktemp -d)"
trap 'rm -rf "${SCRATCH}"' EXIT

echo "=== bench_json.sh: generating snapshots into ${SCRATCH} ==="
for bench in "${GOLDEN_BENCHES[@]}"; do
  bin="${BENCH_DIR}/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "bench_json.sh: missing bench binary ${bin}" >&2
    exit 2
  fi
  PROCSIM_BENCH_OUT="${SCRATCH}" "${bin}" >/dev/null
  if [[ ! -f "${SCRATCH}/BENCH_${bench}.json" ]]; then
    echo "bench_json.sh: ${bench} did not write BENCH_${bench}.json" >&2
    exit 2
  fi
done

if [[ "${UPDATE}" -eq 1 ]]; then
  mkdir -p "${GOLDEN_DIR}"
  for bench in "${GOLDEN_BENCHES[@]}"; do
    cp "${SCRATCH}/BENCH_${bench}.json" "${GOLDEN_DIR}/BENCH_${bench}.json"
  done
  echo "bench_json.sh: updated ${#GOLDEN_BENCHES[@]} goldens in ${GOLDEN_DIR}"
  exit 0
fi

echo "=== bench_json.sh: diffing against ${GOLDEN_DIR} ==="
FAILURES=0
for bench in "${GOLDEN_BENCHES[@]}"; do
  golden="${GOLDEN_DIR}/BENCH_${bench}.json"
  if [[ ! -f "${golden}" ]]; then
    echo "bench_json.sh: missing golden ${golden} (run with --update-goldens)" >&2
    FAILURES=$((FAILURES + 1))
    continue
  fi
  if ! "${DIFF_BIN}" "${golden}" "${SCRATCH}/BENCH_${bench}.json"; then
    FAILURES=$((FAILURES + 1))
  fi
done

if [[ "${FAILURES}" -gt 0 ]]; then
  echo "bench_json.sh: ${FAILURES} bench snapshot(s) drifted from goldens" >&2
  exit 1
fi
echo "bench_json.sh: all ${#GOLDEN_BENCHES[@]} snapshots match goldens"
