#!/usr/bin/env bash
# Static-analysis gate.
#
# Preferred path: clang-tidy over the translation units changed vs
# origin/main (the merge target; a full sweep is pointless on every commit),
# driven by the compile-commands database of an existing build tree.
# Fallback path (for containers without LLVM tooling): g++ -fsyntax-only
# with the project's strict warning set, which still catches header breakage
# and most of what the -Werror build would reject.
#
# Usage: tools/check.sh [build-dir]   (default: build)
set -u -o pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "check.sh: ${BUILD_DIR}/compile_commands.json not found; configuring..." >&2
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 1
fi

SOURCES=$(find src -name '*.cc' | sort)
if [ -z "${SOURCES}" ]; then
  echo "check.sh: no sources found under src/" >&2
  exit 1
fi

FAILED=0

# procsim_lint: all four passes (latch-rank, layering, metrics consistency,
# annotation coverage) must pass before anything else — a rank inversion is
# a deadlock waiting for a schedule, and the other passes guard invariants
# the compiler cannot see.
LINT_BIN="${BUILD_DIR}/tools/procsim_lint"
if [ ! -x "${LINT_BIN}" ]; then
  echo "check.sh: building procsim_lint..." >&2
  cmake --build "${BUILD_DIR}" --target procsim_lint -j "$(nproc 2>/dev/null || echo 2)" >/dev/null || true
fi
if [ ! -x "${LINT_BIN}" ]; then
  # No usable build tree (e.g. fresh container): the linter is deliberately
  # dependency-free, so compile it directly.
  LINT_BIN=$(mktemp -t procsim_lint.XXXXXX)
  if ! g++ -std=c++20 -O1 -Itools \
       tools/lint_core/core.cc \
       tools/latch_lint/lint.cc \
       tools/procsim_lint/annotations.cc \
       tools/procsim_lint/layering.cc \
       tools/procsim_lint/metrics_pass.cc \
       tools/procsim_lint/main.cc -o "${LINT_BIN}"; then
    echo "check.sh: could not build procsim_lint" >&2
    exit 1
  fi
fi
echo "check.sh: running procsim_lint (all passes) over src/..."
if ! "${LINT_BIN}" --root . --quiet; then
  echo "check.sh: procsim_lint FAILED (run ${LINT_BIN} --root . for the report)" >&2
  FAILED=1
fi

# clang-tidy is slow enough that the gate only looks at files changed vs the
# merge target; pass CHECK_ALL=1 (or lose the origin/main ref) for the full
# sweep.
TIDY_SOURCES="${SOURCES}"
if [ "${CHECK_ALL:-0}" != "1" ] && git rev-parse --verify -q origin/main >/dev/null 2>&1; then
  CHANGED=$(git diff --name-only origin/main -- 'src/*.cc' 'src/*.h' | sort -u)
  if [ -z "${CHANGED}" ]; then
    echo "check.sh: no src/ changes vs origin/main; skipping clang-tidy"
    TIDY_SOURCES=""
  else
    # Headers do not appear in the compile DB: widen to every TU that
    # changed, plus every TU sharing a basename with a changed header.
    TIDY_SOURCES=""
    for f in ${CHANGED}; do
      case "${f}" in
        *.cc) [ -f "${f}" ] && TIDY_SOURCES="${TIDY_SOURCES} ${f}" ;;
        *.h)  tu="${f%.h}.cc"; [ -f "${tu}" ] && TIDY_SOURCES="${TIDY_SOURCES} ${tu}" ;;
      esac
    done
    TIDY_SOURCES=$(echo "${TIDY_SOURCES}" | tr ' ' '\n' | sort -u)
  fi
else
  echo "check.sh: no origin/main ref (or CHECK_ALL=1); checking all of src/" >&2
fi

if [ -z "${TIDY_SOURCES}" ]; then
  :
elif command -v clang-tidy >/dev/null 2>&1; then
  echo "check.sh: running clang-tidy (config: .clang-tidy) over:"
  echo "${TIDY_SOURCES}" | sed 's/^/check.sh:   /'
  for src in ${TIDY_SOURCES}; do
    if ! clang-tidy --quiet -p "${BUILD_DIR}" "${src}"; then
      FAILED=1
    fi
  done
else
  echo "check.sh: clang-tidy not found; falling back to g++ -fsyntax-only" >&2
  # Mirror the include setup recorded in the compile-commands DB.
  GTEST_INC=""
  if [ -d /usr/include/gtest ]; then GTEST_INC="-I/usr/include"; fi
  for src in ${TIDY_SOURCES}; do
    if ! g++ -std=c++20 -fsyntax-only -Wall -Wextra -Werror \
         -Isrc ${GTEST_INC} "${src}"; then
      echo "check.sh: FAILED ${src}" >&2
      FAILED=1
    fi
  done
fi

if [ "${FAILED}" -ne 0 ]; then
  echo "check.sh: FAILURES detected" >&2
  exit 1
fi
echo "check.sh: OK"
