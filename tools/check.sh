#!/usr/bin/env bash
# Static-analysis gate.
#
# Preferred path: clang-tidy over every translation unit in src/, driven by
# the compile-commands database of an existing build tree.  Fallback path
# (for containers without LLVM tooling): g++ -fsyntax-only with the project's
# strict warning set, which still catches header breakage and most of what
# the -Werror build would reject.
#
# Usage: tools/check.sh [build-dir]   (default: build)
set -u -o pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "check.sh: ${BUILD_DIR}/compile_commands.json not found; configuring..." >&2
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 1
fi

SOURCES=$(find src -name '*.cc' | sort)
if [ -z "${SOURCES}" ]; then
  echo "check.sh: no sources found under src/" >&2
  exit 1
fi

FAILED=0

# Latch-rank lint: the static acquisition-graph analyzer must pass before
# anything else — a rank inversion is a deadlock waiting for a schedule.
LINT_BIN="${BUILD_DIR}/tools/latch_lint"
if [ ! -x "${LINT_BIN}" ]; then
  echo "check.sh: building latch_lint..." >&2
  cmake --build "${BUILD_DIR}" --target latch_lint -j "$(nproc 2>/dev/null || echo 2)" >/dev/null || true
fi
if [ ! -x "${LINT_BIN}" ]; then
  # No usable build tree (e.g. fresh container): the linter is deliberately
  # dependency-free, so compile it directly.
  LINT_BIN=$(mktemp -t latch_lint.XXXXXX)
  if ! g++ -std=c++20 -O1 -Itools tools/latch_lint/lint.cc \
       tools/latch_lint/main.cc -o "${LINT_BIN}"; then
    echo "check.sh: could not build latch_lint" >&2
    exit 1
  fi
fi
echo "check.sh: running latch-rank lint over src/..."
if ! "${LINT_BIN}" --root . --quiet; then
  echo "check.sh: latch-rank lint FAILED (run ${LINT_BIN} --root . for the report)" >&2
  FAILED=1
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "check.sh: running clang-tidy (config: .clang-tidy) over src/..."
  for src in ${SOURCES}; do
    if ! clang-tidy --quiet -p "${BUILD_DIR}" "${src}"; then
      FAILED=1
    fi
  done
else
  echo "check.sh: clang-tidy not found; falling back to g++ -fsyntax-only" >&2
  # Mirror the include setup recorded in the compile-commands DB.
  GTEST_INC=""
  if [ -d /usr/include/gtest ]; then GTEST_INC="-I/usr/include"; fi
  for src in ${SOURCES}; do
    if ! g++ -std=c++20 -fsyntax-only -Wall -Wextra -Werror \
         -Isrc ${GTEST_INC} "${src}"; then
      echo "check.sh: FAILED ${src}" >&2
      FAILED=1
    fi
  done
fi

if [ "${FAILED}" -ne 0 ]; then
  echo "check.sh: FAILURES detected" >&2
  exit 1
fi
echo "check.sh: OK"
