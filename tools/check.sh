#!/usr/bin/env bash
# Static-analysis gate.
#
# Preferred path: clang-tidy over every translation unit in src/, driven by
# the compile-commands database of an existing build tree.  Fallback path
# (for containers without LLVM tooling): g++ -fsyntax-only with the project's
# strict warning set, which still catches header breakage and most of what
# the -Werror build would reject.
#
# Usage: tools/check.sh [build-dir]   (default: build)
set -u -o pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "check.sh: ${BUILD_DIR}/compile_commands.json not found; configuring..." >&2
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 1
fi

SOURCES=$(find src -name '*.cc' | sort)
if [ -z "${SOURCES}" ]; then
  echo "check.sh: no sources found under src/" >&2
  exit 1
fi

FAILED=0

if command -v clang-tidy >/dev/null 2>&1; then
  echo "check.sh: running clang-tidy (config: .clang-tidy) over src/..."
  for src in ${SOURCES}; do
    if ! clang-tidy --quiet -p "${BUILD_DIR}" "${src}"; then
      FAILED=1
    fi
  done
else
  echo "check.sh: clang-tidy not found; falling back to g++ -fsyntax-only" >&2
  # Mirror the include setup recorded in the compile-commands DB.
  GTEST_INC=""
  if [ -d /usr/include/gtest ]; then GTEST_INC="-I/usr/include"; fi
  for src in ${SOURCES}; do
    if ! g++ -std=c++20 -fsyntax-only -Wall -Wextra -Werror \
         -Isrc ${GTEST_INC} "${src}"; then
      echo "check.sh: FAILED ${src}" >&2
      FAILED=1
    fi
  done
fi

if [ "${FAILED}" -ne 0 ]; then
  echo "check.sh: FAILURES detected" >&2
  exit 1
fi
echo "check.sh: OK"
