#!/usr/bin/env bash
# Tier-2 correctness gate.  Slower than the tier-1 `cmake && ctest` loop;
# run before merging anything that touches storage, Rete, or the strategies.
#
#   1. AddressSanitizer build + full test suite
#   2. UndefinedBehaviorSanitizer build + full test suite
#   3. Deep-audit build (PROCSIM_AUDIT=ON) + focused structural tests.
#      Audit hooks re-validate whole structures after every mutation, so the
#      full suite under audit would be quadratic on bulk loads; the focused
#      list exercises every validator without that blowup.
#   4. ThreadSanitizer build + the concurrent-engine and observability
#      tests (latch-rank checker, multi-session stress, metrics-registry
#      hammering; zero reports allowed)
#   5. Crash-recovery gate: the crash-point fuzzing harness plus the
#      recovery-idempotence suite (label `recovery` in the relwithdebinfo
#      preset) — every WAL record boundary is a simulated crash, recovery
#      is oracle-checked, and the planted-bug self-test must still trip
#   6. Bench smoke: every figure/table/ablation binary in --quick mode
#      (label `bench-smoke` in the relwithdebinfo preset)
#   7. Golden-figure gate: full-mode analytic bench snapshots diffed
#      against bench/goldens/ at 2% tolerance (tools/bench_json.sh)
#   8. Thread-safety gate: Clang build under -Werror=thread-safety (the
#      `thread-safety` preset), including the expected-to-fail
#      negative-compile fixture; skipped gracefully when clang++ is absent
#   9. procsim_lint gate: all four static-analysis passes (latch-rank,
#      layering DAG, metrics consistency, annotation coverage) over src/ —
#      the --json report must be byte-identical to the empty-findings
#      golden (tools/procsim_lint/goldens/clean.json)
#  10. Static-analysis gate (tools/check.sh)
#  11. Format gate (tools/format.sh --check; no-op without clang-format)
set -eu -o pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

run_preset() {
  local preset="$1"
  shift
  echo "=== ci.sh: preset ${preset} ==="
  cmake --preset "${preset}" >/dev/null
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --preset "${preset}" "$@"
}

run_preset asan
run_preset ubsan
run_preset audit -R 'Audit|Validate|BTree|HeapFile|Page|BufferCache|Rete|TupleStore|ILock|Invalidation'
run_preset tsan -R 'Concurrent|LatchRank|Obs'

echo "=== ci.sh: crash-recovery gate (crash-point fuzz + idempotence) ==="
cmake --preset relwithdebinfo >/dev/null
cmake --build --preset relwithdebinfo -j "${JOBS}"
ctest --preset relwithdebinfo -L recovery

echo "=== ci.sh: bench smoke (quick mode) ==="
ctest --preset relwithdebinfo -L bench-smoke

echo "=== ci.sh: golden-figure gate ==="
bash tools/bench_json.sh build

echo "=== ci.sh: thread-safety analysis ==="
if command -v clang++ >/dev/null 2>&1; then
  # Full tree under -Werror=thread-safety, plus the negative-compile fixture
  # (tests/CMakeLists.txt aborts the configure if the fixture compiles).
  run_preset thread-safety -R 'ThreadAnnotations|LatchRank'
else
  echo "ci.sh: clang++ not found; skipping thread-safety preset" >&2
  echo "ci.sh: (the annotations compile to no-ops under this toolchain;" >&2
  echo "ci.sh:  the procsim_lint gate below still enforces the rank order)" >&2
fi

echo "=== ci.sh: procsim_lint (latch-rank, layering, metrics, annotations) ==="
cmake --build --preset relwithdebinfo -j "${JOBS}" --target procsim_lint
./build/tools/procsim_lint --root . --json > build/procsim_lint.json || true
diff -u tools/procsim_lint/goldens/clean.json build/procsim_lint.json || {
  echo "ci.sh: procsim_lint findings (full report follows)" >&2
  ./build/tools/procsim_lint --root . >&2 || true
  exit 1
}

echo "=== ci.sh: static analysis ==="
bash tools/check.sh build-asan

echo "=== ci.sh: format check ==="
bash tools/format.sh --check

echo "ci.sh: ALL GATES PASSED"
