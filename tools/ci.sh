#!/usr/bin/env bash
# Tier-2 correctness gate.  Slower than the tier-1 `cmake && ctest` loop;
# run before merging anything that touches storage, Rete, or the strategies.
#
#   1. AddressSanitizer build + full test suite
#   2. UndefinedBehaviorSanitizer build + full test suite
#   3. Deep-audit build (PROCSIM_AUDIT=ON) + focused structural tests.
#      Audit hooks re-validate whole structures after every mutation, so the
#      full suite under audit would be quadratic on bulk loads; the focused
#      list exercises every validator without that blowup.
#   4. ThreadSanitizer build + the concurrent-engine and observability
#      tests (latch-rank checker, multi-session stress, metrics-registry
#      hammering; zero reports allowed)
#   5. Bench smoke: every figure/table/ablation binary in --quick mode
#      (label `bench-smoke` in the relwithdebinfo preset)
#   6. Golden-figure gate: full-mode analytic bench snapshots diffed
#      against bench/goldens/ at 2% tolerance (tools/bench_json.sh)
#   7. Static-analysis gate (tools/check.sh)
#   8. Format gate (tools/format.sh --check; no-op without clang-format)
set -eu -o pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

run_preset() {
  local preset="$1"
  shift
  echo "=== ci.sh: preset ${preset} ==="
  cmake --preset "${preset}" >/dev/null
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --preset "${preset}" "$@"
}

run_preset asan
run_preset ubsan
run_preset audit -R 'Audit|Validate|BTree|HeapFile|Page|BufferCache|Rete|TupleStore|ILock|Invalidation'
run_preset tsan -R 'Concurrent|LatchRank|Obs'

echo "=== ci.sh: bench smoke (quick mode) ==="
cmake --preset relwithdebinfo >/dev/null
cmake --build --preset relwithdebinfo -j "${JOBS}"
ctest --preset relwithdebinfo -L bench-smoke

echo "=== ci.sh: golden-figure gate ==="
bash tools/bench_json.sh build

echo "=== ci.sh: static analysis ==="
bash tools/check.sh build-asan

echo "=== ci.sh: format check ==="
bash tools/format.sh --check

echo "ci.sh: ALL GATES PASSED"
