#!/usr/bin/env bash
# Formatting gate.  With --check, verifies every source file already matches
# .clang-format; without it, rewrites files in place.  Degrades to a no-op
# warning when clang-format is unavailable (the CI container may not ship
# LLVM tooling) so the rest of the pipeline can still run.
set -u -o pipefail

cd "$(dirname "$0")/.."

MODE="fix"
if [ "${1:-}" = "--check" ]; then MODE="check"; fi

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format.sh: clang-format not found; skipping (install LLVM tooling to enable)" >&2
  exit 0
fi

FILES=$(find src tests -name '*.cc' -o -name '*.h' | sort)
FAILED=0
for f in ${FILES}; do
  if [ "${MODE}" = "check" ]; then
    if ! clang-format --dry-run --Werror "${f}" >/dev/null 2>&1; then
      echo "format.sh: needs formatting: ${f}" >&2
      FAILED=1
    fi
  else
    clang-format -i "${f}"
  fi
done

if [ "${FAILED}" -ne 0 ]; then
  echo "format.sh: run tools/format.sh to fix" >&2
  exit 1
fi
echo "format.sh: OK"
