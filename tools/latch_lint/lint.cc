#include "latch_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core/core.h"

namespace procsim::lint {
namespace {

/// "src/storage/buffer_cache.cc" -> "buffer_cache": header/impl pairs share
/// one mutex namespace.
std::string UnitKey(const std::string& path) {
  auto slash = path.find_last_of("/\\");
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  auto dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  // foo_test shares the unit of foo so fixtures can reuse declarations.
  const std::string suffix = "_test";
  if (base.size() > suffix.size() &&
      base.compare(base.size() - suffix.size(), suffix.size(), suffix) == 0) {
    base = base.substr(0, base.size() - suffix.size());
  }
  return base;
}

const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kKeywords = {
      "if", "for", "while", "switch", "catch", "return", "sizeof",
      "static_assert", "decltype", "alignof", "new", "delete", "throw"};
  return kKeywords;
}

/// True for the key shape this pass owns: `kFrom->kTo`.
bool IsLatchKey(const std::string& key) {
  static const std::regex kShape(R"(^k\w+->k\w+$)");
  return std::regex_match(key, kShape);
}

// ---------------------------------------------------------------------------
// Declarations: mutex name -> rank(s)
// ---------------------------------------------------------------------------

struct MutexTable {
  /// unit -> mutex name -> ranks (a name should have one rank per unit, but
  /// a set keeps re-declarations harmless).
  std::map<std::string, std::map<std::string, std::set<int>>> by_unit;
  /// mutex name -> union of ranks across all units (cross-unit fallback).
  std::map<std::string, std::set<int>> global;
  std::size_t count = 0;
};

void RecordMutex(MutexTable* table, const std::string& unit,
                 const std::string& name, int rank) {
  auto& ranks = table->by_unit[unit][name];
  if (ranks.insert(rank).second) ++table->count;
  table->global[name].insert(rank);
}

/// Finds every ranked-mutex / LatchStripes declaration in `clean` and
/// records it under `unit`.
void CollectMutexDecls(const std::string& clean, const std::string& unit,
                       const RankTable& ranks, MutexTable* table) {
  static const std::regex kDirect(
      R"(\b(?:RankedMutex|RankedSharedMutex|LatchStripes)\s+(\w+)\s*[{(]\s*(?:\w+\s*::\s*)*LatchRank\s*::\s*(k\w+))");
  static const std::regex kStripesAssign(
      R"((\w+)\s*=\s*std\s*::\s*make_unique\s*<\s*(?:\w+\s*::\s*)*LatchStripes\s*>\s*\(\s*(?:\w+\s*::\s*)*LatchRank\s*::\s*(k\w+))");
  static const std::regex kCtorInit(
      R"([:,]\s*(\w+)\s*[({]\s*(?:\w+\s*::\s*)*LatchRank\s*::\s*(k\w+))");
  for (const std::regex* pattern : {&kDirect, &kStripesAssign, &kCtorInit}) {
    for (auto it = std::sregex_iterator(clean.begin(), clean.end(), *pattern);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      const std::string rank_name = (*it)[2].str();
      auto rank = ranks.value_by_name.find(rank_name);
      if (rank == ranks.value_by_name.end()) continue;
      // Filter type/keyword captures the loose ctor-init pattern can make.
      if (name == "RankedMutex" || name == "RankedSharedMutex" ||
          name == "LatchStripes") {
        continue;
      }
      RecordMutex(table, unit, name, rank->second);
    }
  }
}

// ---------------------------------------------------------------------------
// Function scanning: guard constructions, call sites, scope events
// ---------------------------------------------------------------------------

struct AcqEvent {
  std::set<int> ranks;
  std::string mutex_name;
  int line = 0;
  int depth = 0;
};

struct CallEvent {
  std::string callee;
  int line = 0;
};

struct Event {
  enum class Kind { kAcquire, kCall, kScopeClose };
  Kind kind;
  AcqEvent acquire;    // kAcquire
  CallEvent call;      // kCall
  int close_depth = 0; // kScopeClose: depth of the scope being closed
};

struct FunctionOccurrence {
  std::string name;
  std::string file;
  int line = 0;
  std::vector<Event> events;
};

struct FileScan {
  std::vector<FunctionOccurrence> functions;
  std::size_t guard_sites = 0;
};

/// First plausible function name in a scope header, or "" if the `{` opens
/// a non-function scope.  `container` is set for class/namespace/enum/...
std::string HeaderFunctionName(const std::string& header, bool* container) {
  *container = false;
  const std::string trimmed = Trim(header);
  if (trimmed.empty()) return "";
  static const std::regex kLeading(R"(^(\w+))");
  std::smatch lead;
  if (std::regex_search(trimmed, lead, kLeading)) {
    const std::string first = lead[1].str();
    if (first == "namespace" || first == "class" || first == "struct" ||
        first == "union" || first == "enum" || first == "extern") {
      *container = true;
      return "";
    }
    if (first == "else" || first == "do" || first == "try") return "";
  }
  static const std::regex kName(R"((\w+)\s*\()");
  for (auto it = std::sregex_iterator(trimmed.begin(), trimmed.end(), kName);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    const std::size_t pos = static_cast<std::size_t>(it->position(1));
    if (ControlKeywords().count(name) != 0) continue;
    // `x.foo(` / `x->foo(` is a call expression (a lambda argument's body is
    // about to open), not a definition.
    std::size_t before = pos;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(trimmed[before - 1]))) {
      --before;
    }
    if (before > 0) {
      const char prev = trimmed[before - 1];
      if (prev == '.') continue;
      if (prev == '>' && before > 1 && trimmed[before - 2] == '-') continue;
    }
    // A top-level `=` before the name means we are inside an initializer
    // expression, not a signature.
    bool after_assign = false;
    for (std::size_t i = 0; i < pos; ++i) {
      if (trimmed[i] != '=') continue;
      const char p = i > 0 ? trimmed[i - 1] : '\0';
      const char n = i + 1 < trimmed.size() ? trimmed[i + 1] : '\0';
      if (p == '=' || p == '!' || p == '<' || p == '>' || n == '=') continue;
      after_assign = true;
      break;
    }
    if (after_assign) continue;
    return name;
  }
  return "";
}

/// Resolves a guard's mutex expression to candidate ranks.
std::set<int> ResolveMutexExpr(const std::string& expr,
                               const std::string& unit,
                               const MutexTable& mutexes,
                               std::string* resolved_name) {
  std::string name;
  static const std::regex kStripeAccess(
      R"((\w+)\s*(?:->|\.)\s*(?:For|At)\s*\()");
  std::smatch stripe;
  if (std::regex_search(expr, stripe, kStripeAccess)) {
    name = stripe[1].str();
  } else {
    static const std::regex kIdent(R"(\w+)");
    for (auto it = std::sregex_iterator(expr.begin(), expr.end(), kIdent);
         it != std::sregex_iterator(); ++it) {
      const std::string token = it->str();
      if (token == "std" || token == "this" || token == "defer_lock" ||
          token == "adopt_lock" || token == "try_to_lock" ||
          std::isdigit(static_cast<unsigned char>(token[0]))) {
        continue;
      }
      name = token;  // keep the last plausible identifier
    }
  }
  if (resolved_name != nullptr) *resolved_name = name;
  if (name.empty()) return {};
  auto unit_it = mutexes.by_unit.find(unit);
  if (unit_it != mutexes.by_unit.end()) {
    auto it = unit_it->second.find(name);
    if (it != unit_it->second.end()) return it->second;
  }
  auto global_it = mutexes.global.find(name);
  if (global_it != mutexes.global.end()) return global_it->second;
  return {};
}

/// Splits `args` on top-level commas.
std::vector<std::string> SplitArgs(const std::string& args) {
  std::vector<std::string> out;
  int depth = 0;
  std::string current;
  for (char c : args) {
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(Trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!Trim(current).empty()) out.push_back(Trim(current));
  return out;
}

/// Collects `using X = ...RankedLockGuard;` style aliases in one file.
std::vector<std::string> CollectGuardAliases(const std::string& clean) {
  std::vector<std::string> aliases;
  static const std::regex kAlias(
      R"(\busing\s+(\w+)\s*=\s*(?:\w+\s*::\s*)*(?:RankedLockGuard|RankedSharedLockGuard|RankedUniqueLock)\s*;)");
  for (auto it = std::sregex_iterator(clean.begin(), clean.end(), kAlias);
       it != std::sregex_iterator(); ++it) {
    aliases.push_back((*it)[1].str());
  }
  return aliases;
}

std::regex BuildGuardRegex(const std::vector<std::string>& aliases) {
  std::string alternatives =
      "RankedLockGuard|RankedSharedLockGuard|RankedUniqueLock|lock_guard|"
      "unique_lock|shared_lock|scoped_lock";
  for (const std::string& alias : aliases) alternatives += "|" + alias;
  return std::regex(R"(\b(?:\w+\s*::\s*)*()" + alternatives +
                    R"()\s*(?:<[^;>]*>)?\s+(\w+)\s*([({]))");
}

/// Scans one file: function occurrences with ordered acquire/call/scope
/// events.  (Suppressions are collected corpus-wide by SuppressionSet.)
FileScan ScanFile(const SourceFile& file, const std::string& clean,
                  const MutexTable& mutexes) {
  FileScan scan;
  const std::vector<std::string> lines = SplitLines(clean);

  const std::string unit = UnitKey(file.path);
  const std::regex guard_regex = BuildGuardRegex(CollectGuardAliases(clean));
  static const std::regex kCall(R"((\w+)\s*\()");

  struct Scope {
    int depth = 0;
    int function_index = -1;  ///< index into scan.functions, -1 otherwise
    bool is_function_root = false;
  };
  std::vector<Scope> scopes;
  int depth = 0;
  int current_function = -1;
  std::string pending_header;

  auto emit = [&](Event event) {
    if (current_function >= 0) {
      scan.functions[static_cast<std::size_t>(current_function)]
          .events.push_back(std::move(event));
    }
  };

  for (std::size_t line_index = 0; line_index < lines.size(); ++line_index) {
    const std::string& line = lines[line_index];
    const int line_no = static_cast<int>(line_index + 1);

    // Guard constructions and calls on this line, keyed by column so they
    // interleave correctly with braces.
    struct LineEvent {
      std::size_t column;
      char kind;  // 'g' guard, 'c' call, '{', '}', ';'
      AcqEvent acquire;
      CallEvent call;
    };
    std::vector<LineEvent> line_events;

    std::set<std::size_t> guard_columns;  // suppress call-match of guard name
    for (auto it = std::sregex_iterator(line.begin(), line.end(), guard_regex);
         it != std::sregex_iterator(); ++it) {
      const std::size_t open = static_cast<std::size_t>(it->position(3));
      const char open_char = line[open];
      const char close_char = open_char == '(' ? ')' : '}';
      int nesting = 0;
      std::size_t end = open;
      for (; end < line.size(); ++end) {
        if (line[end] == open_char) ++nesting;
        if (line[end] == close_char && --nesting == 0) break;
      }
      if (end >= line.size()) continue;  // malformed / multi-line: skip
      const std::string args = line.substr(open + 1, end - open - 1);
      AcqEvent acquire;
      acquire.line = line_no;
      bool resolved_any = false;
      for (const std::string& arg : SplitArgs(args)) {
        std::string name;
        const std::set<int> arg_ranks =
            ResolveMutexExpr(arg, unit, mutexes, &name);
        if (!arg_ranks.empty()) {
          acquire.ranks.insert(arg_ranks.begin(), arg_ranks.end());
          acquire.mutex_name = name;
          resolved_any = true;
        }
      }
      ++scan.guard_sites;
      guard_columns.insert(static_cast<std::size_t>(it->position(2)));
      // The braces of a brace-init guard are part of the declaration, not
      // scopes; mask them out of the brace walk below.
      if (!resolved_any) continue;
      LineEvent event;
      event.column = static_cast<std::size_t>(it->position(0));
      event.kind = 'g';
      event.acquire = std::move(acquire);
      line_events.push_back(std::move(event));
    }

    for (auto it = std::sregex_iterator(line.begin(), line.end(), kCall);
         it != std::sregex_iterator(); ++it) {
      const std::size_t pos = static_cast<std::size_t>(it->position(1));
      if (guard_columns.count(pos) != 0) continue;
      const std::string name = (*it)[1].str();
      if (ControlKeywords().count(name) != 0) continue;
      // Skip dot-calls (`frames_.size()`): receivers held by value are
      // overwhelmingly std containers / small value objects whose method
      // names (size, count, ...) collide with latched accessors elsewhere.
      // Arrow-calls — how this codebase reaches its latched subsystems —
      // and receiver-less calls are kept.
      std::size_t before = pos;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(line[before - 1]))) {
        --before;
      }
      if (before > 0 && line[before - 1] == '.') continue;
      LineEvent event;
      event.column = pos;
      event.kind = 'c';
      event.call = CallEvent{name, line_no};
      line_events.push_back(event);
    }

    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '{' || line[i] == '}' || line[i] == ';') {
        LineEvent event;
        event.column = i;
        event.kind = line[i];
        line_events.push_back(event);
      }
      pending_header.push_back(line[i]);
    }
    pending_header.push_back('\n');

    std::sort(line_events.begin(), line_events.end(),
              [](const LineEvent& a, const LineEvent& b) {
                return a.column < b.column;
              });

    // Replay the line in order.  pending_header accumulated the raw text;
    // we re-slice it per structural token.
    for (const LineEvent& event : line_events) {
      switch (event.kind) {
        case 'g':
          emit([&] {
            Event e;
            e.kind = Event::Kind::kAcquire;
            e.acquire = event.acquire;
            e.acquire.depth = depth;
            return e;
          }());
          break;
        case 'c':
          emit([&] {
            Event e;
            e.kind = Event::Kind::kCall;
            e.call = event.call;
            return e;
          }());
          break;
        case ';':
          pending_header.clear();
          break;
        case '{': {
          // Header text: everything accumulated since the last `;`/`{`/`}`
          // up to this brace.  pending_header already holds the whole
          // current line, so strip the tail past this brace's column.
          std::string header = pending_header;
          const std::size_t line_start =
              header.size() >= line.size() + 1 ? header.size() - line.size() - 1
                                               : 0;
          if (line_start + event.column <= header.size()) {
            header = header.substr(0, line_start + event.column);
          }
          bool container = false;
          const std::string name = HeaderFunctionName(header, &container);
          Scope scope;
          scope.depth = depth;
          scope.function_index = current_function;
          if (!name.empty()) {
            FunctionOccurrence function;
            function.name = name;
            function.file = file.path;
            function.line = line_no;
            scan.functions.push_back(std::move(function));
            scope.function_index =
                static_cast<int>(scan.functions.size()) - 1;
            scope.is_function_root = true;
          } else if (container) {
            scope.function_index = -1;
          }
          scopes.push_back(scope);
          current_function = scope.function_index;
          ++depth;
          pending_header.clear();
          break;
        }
        case '}': {
          if (!scopes.empty()) {
            // Guards constructed inside the closing scope live at the
            // current (inside) depth, so that is the pop threshold.
            emit([&] {
              Event e;
              e.kind = Event::Kind::kScopeClose;
              e.close_depth = depth;
              return e;
            }());
            scopes.pop_back();
            current_function =
                scopes.empty() ? -1 : scopes.back().function_index;
          }
          depth = std::max(0, depth - 1);
          pending_header.clear();
          break;
        }
        default:
          break;
      }
    }
  }
  return scan;
}

// ---------------------------------------------------------------------------
// May-acquire closure and edge checking
// ---------------------------------------------------------------------------

struct AcqInfo {
  std::string rank_name;
  std::string mutex_name;
  std::string file;
  int line = 0;
  std::vector<std::string> chain;  ///< outermost call first
  /// (file, line) of each chain link, for suppression lookup: an
  /// `allow(kA->kB)` comment on any link of the chain silences edges
  /// carried through it.
  std::vector<std::pair<std::string, int>> chain_sites;
};

using MayAcquireMap = std::map<std::string, std::map<int, AcqInfo>>;

MayAcquireMap ComputeMayAcquire(
    const std::vector<std::pair<const SourceFile*, FileScan>>& scans,
    const RankTable& ranks) {
  MayAcquireMap may_acquire;
  // Seed with direct acquisitions.
  for (const auto& [file, scan] : scans) {
    for (const FunctionOccurrence& function : scan.functions) {
      for (const Event& event : function.events) {
        if (event.kind != Event::Kind::kAcquire) continue;
        for (int rank : event.acquire.ranks) {
          auto& slot = may_acquire[function.name];
          if (slot.count(rank) != 0) continue;
          AcqInfo info;
          auto rank_name = ranks.name_by_value.find(rank);
          info.rank_name = rank_name == ranks.name_by_value.end()
                               ? "?"
                               : rank_name->second;
          info.mutex_name = event.acquire.mutex_name;
          info.file = function.file;
          info.line = event.acquire.line;
          slot.emplace(rank, std::move(info));
        }
      }
    }
  }
  // Propagate through name-matched calls to a fixed point.  A callee whose
  // name equals the caller's is skipped: recursion and interface dispatch to
  // an override of the same method would otherwise feed a function its own
  // acquisitions (e.g. Engine::Access -> Strategy::Access).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [file, scan] : scans) {
      for (const FunctionOccurrence& function : scan.functions) {
        for (const Event& event : function.events) {
          if (event.kind != Event::Kind::kCall) continue;
          if (event.call.callee == function.name) continue;
          auto callee = may_acquire.find(event.call.callee);
          if (callee == may_acquire.end()) continue;
          for (const auto& [rank, info] : callee->second) {
            auto& slot = may_acquire[function.name];
            if (slot.count(rank) != 0) continue;
            AcqInfo hoisted = info;
            hoisted.chain.insert(
                hoisted.chain.begin(),
                function.name + " (" + function.file + ":" +
                    std::to_string(event.call.line) + ") calls " +
                    event.call.callee);
            hoisted.chain_sites.insert(
                hoisted.chain_sites.begin(),
                {function.file, event.call.line});
            slot.emplace(rank, std::move(hoisted));
            changed = true;
          }
        }
      }
    }
  }
  return may_acquire;
}

std::string RankLabel(const RankTable& ranks, int rank) {
  auto it = ranks.name_by_value.find(rank);
  const std::string name = it == ranks.name_by_value.end() ? "?" : it->second;
  return name + "=" + std::to_string(rank);
}

void CheckFunction(const SourceFile& file, SuppressionSet* suppressions,
                   const FunctionOccurrence& function,
                   const MayAcquireMap& may_acquire, const RankTable& ranks,
                   LintResult* result, std::set<std::string>* seen) {
  std::vector<AcqEvent> held;
  auto report = [&](int from_rank, const std::string& from_mutex,
                    const std::string& from_file, int from_line, int to_rank,
                    const std::string& to_mutex, int to_line,
                    const std::vector<std::string>& chain,
                    const std::vector<std::pair<std::string, int>>& sites) {
    const std::string from_name =
        ranks.name_by_value.count(from_rank) != 0
            ? ranks.name_by_value.at(from_rank)
            : "?";
    const std::string to_name = ranks.name_by_value.count(to_rank) != 0
                                    ? ranks.name_by_value.at(to_rank)
                                    : "?";
    const std::string key = from_name + "->" + to_name;
    if (suppressions->Match(file.path, to_line, key)) {
      ++result->suppressed_edges;
      return;
    }
    for (const auto& [site_file, site_line] : sites) {
      if (suppressions->Match(site_file, site_line, key)) {
        ++result->suppressed_edges;
        return;
      }
    }
    Violation violation;
    violation.to_file = file.path;
    violation.to_line = to_line;
    violation.to_rank = to_rank;
    violation.to_rank_name = to_name;
    violation.from_file = from_file;
    violation.from_line = from_line;
    violation.from_rank = from_rank;
    violation.from_rank_name = from_name;
    violation.call_chain = chain;
    std::ostringstream message;
    message << file.path << ":" << to_line << ": latch-rank: acquires '"
            << to_mutex << "' (" << RankLabel(ranks, to_rank)
            << ") while holding '" << from_mutex << "' ("
            << RankLabel(ranks, from_rank) << ") acquired at " << from_file
            << ":" << from_line;
    if (from_rank == to_rank) {
      message << " — same-rank re-entry";
    } else {
      message << " — rank inversion";
    }
    if (!chain.empty()) {
      message << " [via ";
      for (std::size_t i = 0; i < chain.size(); ++i) {
        if (i > 0) message << " -> ";
        message << chain[i];
      }
      message << "]";
    }
    violation.message = message.str();
    if (seen->insert(violation.message).second) {
      result->violations.push_back(std::move(violation));
    }
  };

  for (const Event& event : function.events) {
    switch (event.kind) {
      case Event::Kind::kScopeClose:
        while (!held.empty() && held.back().depth >= event.close_depth) {
          held.pop_back();
        }
        break;
      case Event::Kind::kAcquire: {
        for (const AcqEvent& active : held) {
          for (int from : active.ranks) {
            for (int to : event.acquire.ranks) {
              ++result->edges_checked;
              if (to <= from) {
                report(from, active.mutex_name, function.file, active.line,
                       to, event.acquire.mutex_name, event.acquire.line, {},
                       {});
              }
            }
          }
        }
        held.push_back(event.acquire);
        break;
      }
      case Event::Kind::kCall: {
        if (held.empty()) break;
        if (event.call.callee == function.name) break;
        auto callee = may_acquire.find(event.call.callee);
        if (callee == may_acquire.end()) break;
        for (const AcqEvent& active : held) {
          for (int from : active.ranks) {
            for (const auto& [to, info] : callee->second) {
              ++result->edges_checked;
              if (to <= from) {
                std::vector<std::string> chain;
                chain.push_back(function.name + " (" + function.file + ":" +
                                std::to_string(event.call.line) + ") calls " +
                                event.call.callee);
                chain.insert(chain.end(), info.chain.begin(),
                             info.chain.end());
                chain.push_back("acquired at " + info.file + ":" +
                                std::to_string(info.line));
                std::vector<std::pair<std::string, int>> sites =
                    info.chain_sites;
                sites.emplace_back(info.file, info.line);
                report(from, active.mutex_name, function.file, active.line,
                       to, info.mutex_name, event.call.line, chain, sites);
              }
            }
          }
        }
        break;
      }
    }
  }
}

}  // namespace

RankTable ParseRankTable(const std::string& latch_header_source) {
  RankTable table;
  const std::string clean = StripCommentsAndStrings(latch_header_source);
  static const std::regex kEnum(
      R"(enum\s+class\s+LatchRank[^{]*\{([^}]*)\})");
  std::smatch body;
  if (!std::regex_search(clean, body, kEnum)) return table;
  const std::string entries = body[1].str();
  static const std::regex kEntry(R"((k\w+)\s*=\s*(\d+))");
  for (auto it = std::sregex_iterator(entries.begin(), entries.end(), kEntry);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    const int value = std::stoi((*it)[2].str());
    table.value_by_name[name] = value;
    table.name_by_value[value] = name;
  }
  return table;
}

LintResult AnalyzeSources(const std::vector<SourceFile>& files,
                          const RankTable& ranks) {
  LintResult result;
  if (ranks.empty()) return result;

  SuppressionSet suppressions(files);

  MutexTable mutexes;
  std::vector<std::string> cleans;
  cleans.reserve(files.size());
  for (const SourceFile& file : files) {
    cleans.push_back(StripCommentsAndStrings(file.content));
    CollectMutexDecls(cleans.back(), UnitKey(file.path), ranks, &mutexes);
  }
  result.mutexes_found = mutexes.count;

  std::vector<std::pair<const SourceFile*, FileScan>> scans;
  scans.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    scans.emplace_back(&files[i], ScanFile(files[i], cleans[i], mutexes));
    result.guard_sites_found += scans.back().second.guard_sites;
    result.functions_scanned += scans.back().second.functions.size();
  }

  const MayAcquireMap may_acquire = ComputeMayAcquire(scans, ranks);

  std::set<std::string> seen;
  for (const auto& [file, scan] : scans) {
    for (const FunctionOccurrence& function : scan.functions) {
      CheckFunction(*file, &suppressions, function, may_acquire, ranks,
                    &result, &seen);
    }
  }
  std::sort(result.violations.begin(), result.violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.to_file, a.to_line, a.message) <
                     std::tie(b.to_file, b.to_line, b.message);
            });

  for (const Finding& finding : suppressions.malformed()) {
    BadSuppression bad;
    bad.file = finding.file;
    bad.line = finding.line;
    bad.message = finding.message;
    result.bad_suppressions.push_back(std::move(bad));
  }
  result.unused_suppressions =
      suppressions.UnusedFindings("latch-rank", IsLatchKey);
  return result;
}

std::vector<Finding> ToFindings(const LintResult& result) {
  std::vector<Finding> findings;
  for (const Violation& violation : result.violations) {
    Finding finding;
    finding.pass = "latch-rank";
    finding.file = violation.to_file;
    finding.line = violation.to_line;
    finding.key = violation.from_rank_name + "->" + violation.to_rank_name;
    finding.message = violation.message;
    findings.push_back(std::move(finding));
  }
  for (const BadSuppression& bad : result.bad_suppressions) {
    Finding finding;
    finding.pass = "suppression";
    finding.file = bad.file;
    finding.line = bad.line;
    finding.message = bad.message;
    findings.push_back(std::move(finding));
  }
  findings.insert(findings.end(), result.unused_suppressions.begin(),
                  result.unused_suppressions.end());
  return findings;
}

std::string RenderReport(const LintResult& result) {
  std::ostringstream out;
  for (const Violation& violation : result.violations) {
    out << violation.message << "\n";
  }
  for (const BadSuppression& finding : result.bad_suppressions) {
    out << finding.message << "\n";
  }
  for (const Finding& finding : result.unused_suppressions) {
    out << finding.message << "\n";
  }
  out << "latch-rank: " << result.mutexes_found << " ranked mutexes, "
      << result.guard_sites_found << " guard sites, "
      << result.functions_scanned << " functions, " << result.edges_checked
      << " edges checked, " << result.suppressed_edges << " suppressed, "
      << result.violations.size() << " violations, "
      << result.bad_suppressions.size() << " bad suppressions, "
      << result.unused_suppressions.size() << " unused suppressions\n";
  return out.str();
}

}  // namespace procsim::lint
