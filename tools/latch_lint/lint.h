#ifndef PROCSIM_TOOLS_LATCH_LINT_LINT_H_
#define PROCSIM_TOOLS_LATCH_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

/// \file
/// A lexical latch-rank analyzer: scans C++ sources for ranked-mutex
/// declarations and guard-construction sites, builds a static
/// latch-acquisition graph (direct nesting plus a transitive may-acquire
/// closure over name-matched calls), and checks every edge against the
/// LatchRank order — including paths no test executes.  Companion to the
/// runtime checker in src/concurrent/latch.cc and the Clang thread-safety
/// annotations (DESIGN.md §9); deliberately libclang-free so it builds and
/// runs with any host toolchain.

namespace procsim::lint {

/// One rank from the LatchRank enum: name ("kDatabase") and numeric value.
struct RankTable {
  std::map<std::string, int> value_by_name;  ///< "kDatabase" -> 10
  std::map<int, std::string> name_by_value;

  bool empty() const { return value_by_name.empty(); }
};

/// Extracts the `enum class LatchRank` table from the contents of
/// concurrent/latch.h.  Returns an empty table if the enum is missing.
RankTable ParseRankTable(const std::string& latch_header_source);

/// One source file handed to the analyzer.
struct SourceFile {
  std::string path;     ///< display path (diagnostics)
  std::string content;  ///< full file contents
};

/// A latch-order violation: an acquisition at `to_*` while a latch of an
/// equal or higher rank (`from_*`) is already held on the same path.
struct Violation {
  std::string to_file;
  int to_line = 0;
  std::string to_rank_name;
  int to_rank = 0;
  std::string from_file;
  int from_line = 0;
  std::string from_rank_name;
  int from_rank = 0;
  /// Empty for a direct lexical nesting; otherwise the call chain that
  /// carries the held latch into the acquiring function, outermost first.
  std::vector<std::string> call_chain;
  std::string message;  ///< fully rendered one-line diagnostic
};

/// A `// latch-lint: allow(kA->kB) because ...` comment with no text after
/// `because` — suppressions must carry a justification.
struct BadSuppression {
  std::string file;
  int line = 0;
  std::string message;
};

struct LintResult {
  std::vector<Violation> violations;
  std::vector<BadSuppression> bad_suppressions;
  std::size_t mutexes_found = 0;
  std::size_t guard_sites_found = 0;
  std::size_t functions_scanned = 0;
  std::size_t edges_checked = 0;
  std::size_t suppressed_edges = 0;

  bool ok() const { return violations.empty() && bad_suppressions.empty(); }
};

/// Runs the analysis over `files` against `ranks`.  Pure function of its
/// inputs: no filesystem access, so tests can feed planted fixtures.
LintResult AnalyzeSources(const std::vector<SourceFile>& files,
                          const RankTable& ranks);

/// Renders a human-readable report (one line per finding plus a summary).
std::string RenderReport(const LintResult& result);

}  // namespace procsim::lint

#endif  // PROCSIM_TOOLS_LATCH_LINT_LINT_H_
