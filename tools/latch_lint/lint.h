#ifndef PROCSIM_TOOLS_LATCH_LINT_LINT_H_
#define PROCSIM_TOOLS_LATCH_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint_core/core.h"

/// \file
/// The latch-rank pass (pass #1 of tools/procsim_lint): scans C++ sources
/// for ranked-mutex declarations and guard-construction sites, builds a
/// static latch-acquisition graph (direct nesting plus a transitive
/// may-acquire closure over name-matched calls), and checks every edge
/// against the LatchRank order — including paths no test executes.
/// Companion to the runtime checker in src/util/latch.cc and the Clang
/// thread-safety annotations (DESIGN.md §9).  Built on lint_core (text
/// stripping, suppression engine, findings).

namespace procsim::lint {

/// One rank from the LatchRank enum: name ("kDatabase") and numeric value.
struct RankTable {
  std::map<std::string, int> value_by_name;  ///< "kDatabase" -> 10
  std::map<int, std::string> name_by_value;

  bool empty() const { return value_by_name.empty(); }
};

/// Extracts the `enum class LatchRank` table from the contents of
/// util/latch.h.  Returns an empty table if the enum is missing.
RankTable ParseRankTable(const std::string& latch_header_source);

/// A latch-order violation: an acquisition at `to_*` while a latch of an
/// equal or higher rank (`from_*`) is already held on the same path.
struct Violation {
  std::string to_file;
  int to_line = 0;
  std::string to_rank_name;
  int to_rank = 0;
  std::string from_file;
  int from_line = 0;
  std::string from_rank_name;
  int from_rank = 0;
  /// Empty for a direct lexical nesting; otherwise the call chain that
  /// carries the held latch into the acquiring function, outermost first.
  std::vector<std::string> call_chain;
  std::string message;  ///< fully rendered one-line diagnostic
};

/// A malformed suppression comment — a bare `allow()` or one with no text
/// after `because`: suppressions must name a finding and justify it.
struct BadSuppression {
  std::string file;
  int line = 0;
  std::string message;
};

struct LintResult {
  std::vector<Violation> violations;
  std::vector<BadSuppression> bad_suppressions;
  /// Latch-rank suppressions (`allow(kA->kB)`) that matched no finding:
  /// stale keys rot into false confidence, so they are findings too.
  std::vector<Finding> unused_suppressions;
  std::size_t mutexes_found = 0;
  std::size_t guard_sites_found = 0;
  std::size_t functions_scanned = 0;
  std::size_t edges_checked = 0;
  std::size_t suppressed_edges = 0;

  bool ok() const {
    return violations.empty() && bad_suppressions.empty() &&
           unused_suppressions.empty();
  }
};

/// Runs the analysis over `files` against `ranks`.  Pure function of its
/// inputs: no filesystem access, so tests can feed planted fixtures.
LintResult AnalyzeSources(const std::vector<SourceFile>& files,
                          const RankTable& ranks);

/// Flattens a LintResult into generic findings for the procsim_lint driver
/// (pass name "latch-rank").
std::vector<Finding> ToFindings(const LintResult& result);

/// Renders a human-readable report (one line per finding plus a summary).
std::string RenderReport(const LintResult& result);

}  // namespace procsim::lint

#endif  // PROCSIM_TOOLS_LATCH_LINT_LINT_H_
