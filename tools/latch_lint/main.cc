#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "latch_lint/lint.h"

namespace {

namespace fs = std::filesystem;

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool IsSourcePath(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

int Usage() {
  std::cerr
      << "usage: latch_lint [--root DIR] [--quiet] [extra paths...]\n"
      << "\n"
      << "Static latch-rank analyzer: scans DIR/src (default: cwd) for\n"
      << "ranked-mutex guard sites, builds the latch-acquisition graph and\n"
      << "checks every edge against the LatchRank order declared in\n"
      << "src/concurrent/latch.h.  Extra paths (files or directories) are\n"
      << "scanned in addition to DIR/src.  Exit 0 = clean, 1 = violations\n"
      << "or unjustified suppressions, 2 = usage/setup error.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool quiet = false;
  std::vector<fs::path> extra;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      extra.emplace_back(arg);
    }
  }

  const fs::path latch_header = root / "src" / "concurrent" / "latch.h";
  std::string latch_source;
  if (!ReadFile(latch_header, &latch_source)) {
    std::cerr << "latch-lint: cannot read " << latch_header.string()
              << " (pass --root to point at the repo root)\n";
    return 2;
  }
  const procsim::lint::RankTable ranks =
      procsim::lint::ParseRankTable(latch_source);
  if (ranks.empty()) {
    std::cerr << "latch-lint: no LatchRank enum found in "
              << latch_header.string() << "\n";
    return 2;
  }

  std::vector<fs::path> scan_roots = {root / "src"};
  scan_roots.insert(scan_roots.end(), extra.begin(), extra.end());

  std::vector<procsim::lint::SourceFile> files;
  for (const fs::path& scan_root : scan_roots) {
    std::error_code ec;
    if (fs::is_regular_file(scan_root, ec)) {
      std::string content;
      if (!ReadFile(scan_root, &content)) {
        std::cerr << "latch-lint: cannot read " << scan_root.string() << "\n";
        return 2;
      }
      files.push_back({scan_root.generic_string(), std::move(content)});
      continue;
    }
    if (!fs::is_directory(scan_root, ec)) {
      std::cerr << "latch-lint: no such file or directory: "
                << scan_root.string() << "\n";
      return 2;
    }
    std::vector<fs::path> paths;
    for (fs::recursive_directory_iterator it(scan_root, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (it->is_regular_file() && IsSourcePath(it->path())) {
        paths.push_back(it->path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& path : paths) {
      std::string content;
      if (!ReadFile(path, &content)) {
        std::cerr << "latch-lint: cannot read " << path.string() << "\n";
        return 2;
      }
      files.push_back({path.generic_string(), std::move(content)});
    }
  }

  const procsim::lint::LintResult result =
      procsim::lint::AnalyzeSources(files, ranks);
  if (!quiet || !result.ok()) {
    std::cout << procsim::lint::RenderReport(result);
  }
  return result.ok() ? 0 : 1;
}
