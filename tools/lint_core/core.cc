#include "lint_core/core.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <regex>
#include <sstream>
#include <tuple>

namespace procsim::lint {

std::string StripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const auto end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string NormalizeKey(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

SuppressionSet::SuppressionSet(const std::vector<SourceFile>& files) {
  // Tag and `because` match case-insensitively (satellite: sloppy-case
  // comments must still suppress); the key keeps its case — rank names and
  // metric names are case-sensitive identifiers.
  // The key may itself contain one parenthesized group — `unguarded(m_)`,
  // `layering(a->b)`, `metric(n)` — so allow one level of nesting.
  static const std::regex kAllow(
      R"((?:latch-lint|procsim-lint)\s*:\s*allow\s*\(((?:[^()]|\([^()]*\))*)\)\s*(.*))",
      std::regex_constants::icase);
  static const std::regex kBecause(R"(^because\b\s*(.*))",
                                   std::regex_constants::icase);
  for (const SourceFile& file : files) {
    const std::vector<std::string> raw_lines = SplitLines(file.content);
    const std::vector<std::string> clean_lines =
        SplitLines(StripCommentsAndStrings(file.content));
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
      std::smatch match;
      if (!std::regex_search(raw_lines[i], match, kAllow)) continue;
      const int line = static_cast<int>(i + 1);
      const std::string key = NormalizeKey(match[1].str());
      const std::string tail = Trim(match[2].str());
      std::smatch because;
      std::string reason;
      if (std::regex_search(tail, because, kBecause)) {
        reason = Trim(because[1].str());
      }
      if (key.empty() || reason.empty()) {
        Finding finding;
        finding.pass = "suppression";
        finding.file = file.path;
        finding.line = line;
        finding.message =
            file.path + ":" + std::to_string(line) +
            ": suppression: " +
            (key.empty() ? std::string("bare allow() names no finding")
                         : std::string("no justification")) +
            " — write `// procsim-lint: allow(<key>) because <reason>`";
        malformed_.push_back(std::move(finding));
        continue;
      }
      Suppression suppression;
      suppression.file = file.path;
      suppression.line = line;
      suppression.key = key;
      suppression.reason = reason;
      // Covers the comment line plus every line down to (and including)
      // the next code line, so the comment sits above the statement it
      // excuses, possibly wrapped over several comment lines.
      suppression.covered.push_back(line);
      for (std::size_t j = i + 1; j < clean_lines.size() && j < i + 10; ++j) {
        suppression.covered.push_back(static_cast<int>(j + 1));
        if (!Trim(clean_lines[j]).empty()) break;  // reached the statement
      }
      by_file_[file.path].push_back(suppressions_.size());
      suppressions_.push_back(std::move(suppression));
    }
  }
}

bool SuppressionSet::Match(const std::string& file, int line,
                           const std::string& key) {
  const std::string normalized = NormalizeKey(key);
  auto it = by_file_.find(file);
  if (it == by_file_.end()) return false;
  bool matched = false;
  for (std::size_t index : it->second) {
    Suppression& suppression = suppressions_[index];
    if (suppression.key != normalized) continue;
    if (std::find(suppression.covered.begin(), suppression.covered.end(),
                  line) == suppression.covered.end()) {
      continue;
    }
    suppression.matched = true;
    matched = true;  // keep marking: stacked duplicates are all "used"
  }
  return matched;
}

std::vector<Finding> SuppressionSet::UnusedFindings(
    const std::string& pass,
    const std::function<bool(const std::string&)>& owns_key) const {
  std::vector<Finding> findings;
  for (const Suppression& suppression : suppressions_) {
    if (suppression.matched || !owns_key(suppression.key)) continue;
    Finding finding;
    finding.pass = pass;
    finding.file = suppression.file;
    finding.line = suppression.line;
    finding.message = suppression.file + ":" +
                      std::to_string(suppression.line) + ": " + pass +
                      ": unused suppression `allow(" + suppression.key +
                      ")` — it matched no finding; fix the key or delete it";
    findings.push_back(std::move(finding));
  }
  return findings;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string RenderFindingsJson(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& finding = findings[i];
    out << (i == 0 ? "" : ",") << "\n    {\"pass\": \""
        << JsonEscape(finding.pass) << "\", \"file\": \""
        << JsonEscape(finding.file) << "\", \"line\": " << finding.line
        << ", \"key\": \"" << JsonEscape(finding.key) << "\", \"message\": \""
        << JsonEscape(finding.message) << "\"}";
  }
  if (!findings.empty()) out << "\n  ";
  out << "],\n  \"count\": " << findings.size() << "\n}\n";
  return out.str();
}

std::string RenderFindingsText(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& finding : findings) out << finding.message << "\n";
  return out.str();
}

void SortAndDedupe(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.pass, a.message) <
                     std::tie(b.file, b.line, b.pass, b.message);
            });
  findings->erase(
      std::unique(findings->begin(), findings->end(),
                  [](const Finding& a, const Finding& b) {
                    return a.file == b.file && a.line == b.line &&
                           a.message == b.message;
                  }),
      findings->end());
}

}  // namespace procsim::lint
