#ifndef PROCSIM_TOOLS_LINT_CORE_CORE_H_
#define PROCSIM_TOOLS_LINT_CORE_CORE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

/// \file
/// The shared lexical core under every procsim_lint pass (DESIGN.md §10):
/// comment/string stripping, line splitting, the `// procsim-lint:
/// allow(<key>) because <reason>` suppression engine, and the Finding /
/// report plumbing.  Deliberately libclang-free so the linters build and
/// run with any host toolchain.
///
/// Passes are pure functions over SourceFile vectors — no filesystem access
/// — so fixture tests can feed planted sources (tests/*_lint_test.cc).

namespace procsim::lint {

/// One source file handed to an analyzer.
struct SourceFile {
  std::string path;     ///< display path (diagnostics)
  std::string content;  ///< full file contents
};

/// One diagnostic from any pass.  `key` is the suppression key that would
/// silence it (empty when the finding is not suppressible, e.g. a malformed
/// suppression comment).
struct Finding {
  std::string pass;     ///< "latch-rank", "layering", ...
  std::string file;
  int line = 0;
  std::string key;
  std::string message;  ///< fully rendered one-line diagnostic
};

// ---------------------------------------------------------------------------
// Text utilities
// ---------------------------------------------------------------------------

/// Blanks comments and string/char literals (preserving newlines and byte
/// offsets) so code regexes never match inside them.
std::string StripCommentsAndStrings(const std::string& text);

/// Splits on '\n'; a trailing newline yields a final empty line.
std::vector<std::string> SplitLines(const std::string& text);

/// Strips leading/trailing whitespace.
std::string Trim(const std::string& s);

/// Removes every whitespace character — the normal form for suppression
/// keys, so `allow(kA -> kB)` and `allow(kA->kB)` are the same key.
std::string NormalizeKey(const std::string& s);

// ---------------------------------------------------------------------------
// Suppression engine
// ---------------------------------------------------------------------------

/// A parsed `// procsim-lint: allow(<key>) because <reason>` comment (the
/// legacy `latch-lint:` tag is accepted too; tags match case-insensitively).
/// The suppression covers findings on its own line and every line down to
/// (and including) the next non-blank code line, so the comment can sit
/// above the statement it excuses.
struct Suppression {
  std::string file;
  int line = 0;               ///< line of the comment
  std::string key;            ///< normalized (whitespace-free)
  std::string reason;
  std::vector<int> covered;   ///< lines this suppression applies to
  bool matched = false;       ///< set when a finding consumed it
};

/// All suppressions in a corpus plus the malformed ones: a bare `allow()`
/// or a missing `because <reason>` is itself a finding — suppressions must
/// say what they suppress and why.
class SuppressionSet {
 public:
  /// Scans every file for suppression comments.
  explicit SuppressionSet(const std::vector<SourceFile>& files);

  /// True (and marks the suppression used) if a suppression with `key`
  /// covers `file:line`.
  bool Match(const std::string& file, int line, const std::string& key);

  /// Malformed-suppression findings (reported under pass "suppression").
  const std::vector<Finding>& malformed() const { return malformed_; }

  /// Findings for suppressions whose key satisfies `owns_key` but that
  /// never matched a finding.  Each pass owns a disjoint key shape
  /// (`kA->kB`, `layering(...)`, `metric(...)`, `unguarded(...)`), so
  /// unused-suppression reporting stays per-pass.
  std::vector<Finding> UnusedFindings(
      const std::string& pass,
      const std::function<bool(const std::string&)>& owns_key) const;

 private:
  std::vector<Suppression> suppressions_;
  std::map<std::string, std::vector<std::size_t>> by_file_;
  std::vector<Finding> malformed_;
};

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string JsonEscape(const std::string& s);

/// Renders findings as one JSON object:
/// {"findings": [{"pass": ..., "file": ..., "line": N, "key": ...,
///   "message": ...}, ...], "count": N}
/// Stable field order and newline placement so CI can diff against a
/// golden (tools/procsim_lint/goldens/clean.json).
std::string RenderFindingsJson(const std::vector<Finding>& findings);

/// One line per finding (its message), sorted by file/line/message.
std::string RenderFindingsText(const std::vector<Finding>& findings);

/// Sorts by (file, line, pass, message) and drops exact duplicates —
/// several passes can report the same malformed suppression comment.
void SortAndDedupe(std::vector<Finding>* findings);

}  // namespace procsim::lint

#endif  // PROCSIM_TOOLS_LINT_CORE_CORE_H_
