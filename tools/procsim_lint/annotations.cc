#include "procsim_lint/annotations.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>

namespace procsim::lint {
namespace {

/// One `class`/`struct` body found in a file (nested classes get their own
/// entry; the outer body's member walk skips the nested braces).
struct ClassBody {
  std::string name;
  std::size_t open = 0;   ///< offset of '{'
  std::size_t close = 0;  ///< offset of matching '}'
};

std::size_t MatchBrace(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i;
  }
  return std::string::npos;
}

std::vector<ClassBody> FindClassBodies(const std::string& clean) {
  std::vector<ClassBody> bodies;
  // The name is the last identifier before a base clause / body — skips
  // CAPABILITY("...") style attribute macros between keyword and name.
  static const std::regex kClass(R"(\b(?:class|struct)\b([^;{}()]*)\{)");
  for (auto it = std::sregex_iterator(clean.begin(), clean.end(), kClass);
       it != std::sregex_iterator(); ++it) {
    std::string head = (*it)[1].str();
    const auto colon = head.find(':');
    if (colon != std::string::npos) head = head.substr(0, colon);
    static const std::regex kIdent(R"(\w+)");
    std::string name;
    for (auto id = std::sregex_iterator(head.begin(), head.end(), kIdent);
         id != std::sregex_iterator(); ++id) {
      name = id->str();
    }
    if (name.empty() || name == "final") continue;  // anonymous
    ClassBody body;
    body.name = name;
    body.open = static_cast<std::size_t>(it->position(0)) +
                it->length(0) - 1;
    body.close = MatchBrace(clean, body.open);
    if (body.close == std::string::npos) continue;
    bodies.push_back(std::move(body));
  }
  return bodies;
}

int LineOf(const std::string& text, std::size_t offset) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() + offset, '\n'));
}

bool HasToken(const std::string& text, const std::string& token) {
  const std::regex pattern("\\b" + token + "\\b");
  return std::regex_search(text, pattern);
}

/// Member declarations at depth 1 of a class body, with the offset of the
/// terminating ';' for line numbers.  Function definitions (a braced block
/// not followed by ';') are dropped; brace-initialized members keep their
/// declarator text with the init removed.
struct Member {
  std::string text;
  std::size_t begin_offset = 0;  ///< first non-space char of the declaration
};

std::vector<Member> SplitMembers(const std::string& clean,
                                 const ClassBody& body) {
  std::vector<Member> members;
  std::string current;
  std::size_t begin = 0;
  auto note_char = [&](char c, std::size_t offset) {
    if (Trim(current).empty() &&
        !std::isspace(static_cast<unsigned char>(c))) {
      begin = offset;
    }
    current.push_back(c);
  };
  for (std::size_t i = body.open + 1; i < body.close; ++i) {
    const char c = clean[i];
    if (c == '{') {
      const std::size_t close = MatchBrace(clean, i);
      if (close == std::string::npos || close >= body.close) break;
      std::size_t next = close + 1;
      while (next < body.close &&
             std::isspace(static_cast<unsigned char>(clean[next]))) {
        ++next;
      }
      if (next < body.close && clean[next] == ';') {
        // Brace-initialized member (`T m_{...};`) or a nested type with a
        // declarator; the init/body text itself is irrelevant.
        i = close;
        continue;
      }
      // Function body: discard the accumulated signature.
      current.clear();
      i = close;
      continue;
    }
    if (c == ';') {
      const std::string trimmed = Trim(current);
      if (!trimmed.empty()) {
        members.push_back(Member{trimmed, begin});
      }
      current.clear();
      continue;
    }
    if (c == ':' && (i + 1 >= clean.size() || clean[i + 1] != ':') &&
        (i == 0 || clean[i - 1] != ':')) {
      const std::string trimmed = Trim(current);
      if (trimmed == "public" || trimmed == "private" ||
          trimmed == "protected") {
        current.clear();
        continue;
      }
    }
    note_char(c, i);
  }
  return members;
}

/// Removes one macro-call `NAME(...)` occurrence list from `text`.
std::string StripMacro(const std::string& text, const std::string& name) {
  std::string out = text;
  for (;;) {
    const std::regex pattern("\\b" + name + "\\s*\\(");
    std::smatch match;
    if (!std::regex_search(out, match, pattern)) return out;
    const std::size_t start = static_cast<std::size_t>(match.position(0));
    std::size_t i = start + match.length(0) - 1;  // at '('
    int depth = 0;
    for (; i < out.size(); ++i) {
      if (out[i] == '(') ++depth;
      if (out[i] == ')' && --depth == 0) break;
    }
    if (i >= out.size()) return out;
    out = out.substr(0, start) + " " + out.substr(i + 1);
  }
}

/// Drops a trailing `= ...` default initializer and `[N]` array suffixes.
std::string StripInitializer(const std::string& text) {
  int depth = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '<') ++depth;
    if (c == ')' || c == ']' || c == '>') --depth;
    if (c == '=' && depth == 0) {
      const char prev = i > 0 ? text[i - 1] : '\0';
      const char next = i + 1 < text.size() ? text[i + 1] : '\0';
      if (prev != '=' && prev != '!' && prev != '<' && prev != '>' &&
          next != '=') {
        return Trim(text.substr(0, i));
      }
    }
  }
  return Trim(text);
}

/// The declared member name: the last identifier, after annotations and
/// initializers are stripped.
std::string MemberName(const std::string& declarator) {
  static const std::regex kIdent(R"(\w+)");
  std::string name;
  for (auto it =
           std::sregex_iterator(declarator.begin(), declarator.end(), kIdent);
       it != std::sregex_iterator(); ++it) {
    name = it->str();
  }
  return name;
}

/// True if the declarator has a '(' outside angle brackets — a member
/// function (annotation macros must be stripped first).
bool LooksLikeFunction(const std::string& declarator) {
  int angle = 0;
  for (char c : declarator) {
    if (c == '<') ++angle;
    if (c == '>') --angle;
    if (c == '(' && angle == 0) return true;
  }
  return false;
}

const std::regex& MutexTypeRegex() {
  // util::Mutex matches as the bare token `Mutex`; MutexLock / std::mutex /
  // shared_mutex deliberately do not.
  static const std::regex kMutex(
      R"(\b(?:RankedMutex|RankedSharedMutex|Mutex)\b)");
  return kMutex;
}

bool IsLatchTyped(const std::string& text) {
  static const std::regex kLatch(
      R"(\b(?:RankedMutex|RankedSharedMutex|Mutex|LatchStripes)\b)");
  return std::regex_search(text, kLatch);
}

bool FirstWordIs(const std::string& text, const std::string& word) {
  static const std::regex kFirst(R"(^\s*(\w+))");
  std::smatch match;
  return std::regex_search(text, match, kFirst) && match[1].str() == word;
}

/// True for members that need no GUARDED_BY: const-qualified storage (the
/// value can never change after construction) and references (rebinding is
/// impossible; the referent is the owner's concern).
bool IsImmutable(const std::string& declarator, const std::string& name) {
  if (declarator.find('&') != std::string::npos) return true;
  // `const T x_` (no pointer declarator: pointee constness is not member
  // constness) or `T* const x_` / `T x_` with const directly before the
  // name.
  static const std::regex kConstBeforeName(R"(\bconst\s+\w+$)");
  if (std::regex_search(declarator, kConstBeforeName)) return true;
  if (FirstWordIs(declarator, "const") &&
      declarator.find('*') == std::string::npos) {
    return true;
  }
  (void)name;
  return false;
}

}  // namespace

AnnotationResult AnalyzeAnnotations(const std::vector<SourceFile>& files) {
  AnnotationResult result;
  SuppressionSet suppressions(files);

  for (const SourceFile& file : files) {
    const std::string clean = StripCommentsAndStrings(file.content);
    for (const ClassBody& body : FindClassBodies(clean)) {
      const std::vector<Member> members = SplitMembers(clean, body);
      bool holds_mutex = false;
      for (const Member& member : members) {
        if (std::regex_search(member.text, MutexTypeRegex())) {
          holds_mutex = true;
          break;
        }
      }
      if (!holds_mutex) continue;
      ++result.classes_with_locks;

      for (const Member& member : members) {
        const std::string& text = member.text;
        // Type declarations, aliases, friends, compile-time members, and
        // enums carry no runtime state of their own.
        if (FirstWordIs(text, "using") || FirstWordIs(text, "typedef") ||
            FirstWordIs(text, "friend") || FirstWordIs(text, "static") ||
            FirstWordIs(text, "constexpr") || FirstWordIs(text, "enum") ||
            FirstWordIs(text, "class") || FirstWordIs(text, "struct") ||
            FirstWordIs(text, "union") || FirstWordIs(text, "template")) {
          continue;
        }
        const bool annotated = HasToken(text, "GUARDED_BY") ||
                               HasToken(text, "PT_GUARDED_BY");
        std::string stripped = StripMacro(text, "GUARDED_BY");
        stripped = StripMacro(stripped, "PT_GUARDED_BY");
        stripped = StripMacro(stripped, "ACQUIRED_AFTER");
        stripped = StripMacro(stripped, "ACQUIRED_BEFORE");
        stripped = StripInitializer(Trim(stripped));
        if (stripped.empty() || LooksLikeFunction(stripped)) continue;
        const std::string name = MemberName(stripped);
        if (name.empty()) continue;
        ++result.members_checked;
        if (annotated) continue;
        if (IsLatchTyped(stripped)) continue;  // the lock itself
        if (HasToken(stripped, "atomic")) continue;  // self-synchronizing
        if (IsImmutable(stripped, name)) continue;
        const int line = LineOf(clean, member.begin_offset);
        const std::string key = "unguarded(" + name + ")";
        if (suppressions.Match(file.path, line, key)) {
          ++result.suppressed;
          continue;
        }
        Finding finding;
        finding.pass = "annotations";
        finding.file = file.path;
        finding.line = line;
        finding.key = key;
        finding.message =
            file.path + ":" + std::to_string(line) + ": annotations: '" +
            body.name + "::" + name + "' is a mutable member of a " +
            "lock-holding class but has no GUARDED_BY annotation — " +
            "annotate it, make it const, or suppress with a reason";
        result.findings.push_back(std::move(finding));
      }
    }
  }

  for (const Finding& finding : suppressions.malformed()) {
    result.findings.push_back(finding);
  }
  auto owns_key = [](const std::string& key) {
    return key.rfind("unguarded(", 0) == 0;
  };
  for (Finding& finding :
       suppressions.UnusedFindings("annotations", owns_key)) {
    result.findings.push_back(std::move(finding));
  }
  SortAndDedupe(&result.findings);
  return result;
}

}  // namespace procsim::lint
