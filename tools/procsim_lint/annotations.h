#ifndef PROCSIM_TOOLS_PROCSIM_LINT_ANNOTATIONS_H_
#define PROCSIM_TOOLS_PROCSIM_LINT_ANNOTATIONS_H_

#include <string>
#include <vector>

#include "lint_core/core.h"

/// \file
/// The annotation-coverage pass: for every class holding a RankedMutex /
/// RankedSharedMutex / util::Mutex, report mutable (non-const) data members
/// that lack a GUARDED_BY / PT_GUARDED_BY annotation.  Clang's -Wthread-
/// safety only checks fields that already carry an annotation; this pass
/// closes the gap by demanding the annotation exist.  Exempt: the latch
/// members themselves, const members, references, std::atomic fields, and
/// static/type declarations.  Suppression key: `unguarded(member_)`.

namespace procsim::lint {

struct AnnotationResult {
  std::vector<Finding> findings;
  std::size_t classes_with_locks = 0;
  std::size_t members_checked = 0;
  std::size_t suppressed = 0;

  bool ok() const { return findings.empty(); }
};

AnnotationResult AnalyzeAnnotations(const std::vector<SourceFile>& files);

}  // namespace procsim::lint

#endif  // PROCSIM_TOOLS_PROCSIM_LINT_ANNOTATIONS_H_
