#include "procsim_lint/layering.h"

#include <algorithm>
#include <functional>
#include <regex>
#include <sstream>

namespace procsim::lint {
namespace {

/// "src/storage/buffer_cache.cc" -> "storage"; "" if not under src/.
std::string ModuleOf(const std::string& path) {
  static const std::regex kModule(R"((?:^|/)src/(\w+)/)");
  std::smatch match;
  if (!std::regex_search(path, match, kModule)) return "";
  return match[1].str();
}

struct IncludeEdge {
  std::string from;      ///< including module
  std::string to;        ///< included module
  std::string file;      ///< including file
  int line = 0;
  std::string target;    ///< included path as written
};

/// One representative include site per module->module edge, for cycle
/// chains.
using EdgeSites = std::map<std::pair<std::string, std::string>, IncludeEdge>;

/// Depth-first cycle search over the module graph; reports each cycle once,
/// rooted at its lexicographically smallest module.
void FindCycles(const std::map<std::string, std::set<std::string>>& edges,
                const EdgeSites& sites, std::vector<Finding>* findings) {
  std::set<std::vector<std::string>> reported;
  for (const auto& [root, unused] : edges) {
    // DFS from `root`, only visiting modules >= root so each cycle is found
    // from its smallest member exactly once.
    std::vector<std::string> path{root};
    std::set<std::string> on_path{root};
    std::function<void(const std::string&)> visit =
        [&](const std::string& module) {
          auto it = edges.find(module);
          if (it == edges.end()) return;
          for (const std::string& next : it->second) {
            if (next == root && path.size() > 1) {
              std::vector<std::string> cycle = path;
              cycle.push_back(root);
              if (!reported.insert(cycle).second) continue;
              std::ostringstream message;
              const IncludeEdge& first =
                  sites.at({cycle[0], cycle[1]});
              message << first.file << ":" << first.line
                      << ": layering: dependency cycle ";
              for (std::size_t i = 0; i < cycle.size(); ++i) {
                if (i > 0) message << " -> ";
                message << cycle[i];
              }
              message << " [";
              for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
                const IncludeEdge& edge = sites.at({cycle[i], cycle[i + 1]});
                if (i > 0) message << "; ";
                message << edge.from << " includes \"" << edge.target
                        << "\" at " << edge.file << ":" << edge.line;
              }
              message << "]";
              Finding finding;
              finding.pass = "layering";
              finding.file = first.file;
              finding.line = first.line;
              finding.key = "layering(" + cycle[0] + "->" + cycle[1] + ")";
              finding.message = message.str();
              findings->push_back(std::move(finding));
              continue;
            }
            if (next < root || on_path.count(next) != 0) continue;
            path.push_back(next);
            on_path.insert(next);
            visit(next);
            on_path.erase(next);
            path.pop_back();
          }
        };
    visit(root);
  }
}

}  // namespace

LayerGraph ParseLayerGraph(const std::string& text, const std::string& path,
                           std::vector<Finding>* findings) {
  LayerGraph graph;
  const std::vector<std::string> lines = SplitLines(text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      Finding finding;
      finding.pass = "layering";
      finding.file = path;
      finding.line = static_cast<int>(i + 1);
      finding.message = path + ":" + std::to_string(i + 1) +
                        ": layering: malformed layers.txt line (want " +
                        "`module: dep dep ...`)";
      findings->push_back(std::move(finding));
      continue;
    }
    const std::string module = Trim(line.substr(0, colon));
    graph.order.push_back(module);
    auto& deps = graph.allowed[module];
    std::istringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) deps.insert(dep);
  }
  // The declaration itself must be a DAG over declared modules: walk each
  // module's declared deps transitively and flag a path back to itself.
  for (const std::string& module : graph.order) {
    std::set<std::string> seen;
    std::vector<std::string> stack(graph.allowed[module].begin(),
                                   graph.allowed[module].end());
    while (!stack.empty()) {
      const std::string current = stack.back();
      stack.pop_back();
      if (!seen.insert(current).second) continue;
      if (current == module) {
        Finding finding;
        finding.pass = "layering";
        finding.file = path;
        finding.message = path + ": layering: declared dependencies of '" +
                          module + "' reach back to itself — layers.txt " +
                          "must declare a DAG";
        findings->push_back(std::move(finding));
        break;
      }
      auto it = graph.allowed.find(current);
      if (it == graph.allowed.end()) continue;
      stack.insert(stack.end(), it->second.begin(), it->second.end());
    }
  }
  return graph;
}

LayeringResult AnalyzeLayering(const std::vector<SourceFile>& files,
                               const LayerGraph& graph) {
  LayeringResult result;
  SuppressionSet suppressions(files);
  static const std::regex kInclude(R"(^\s*#\s*include\s*\"([^\"]+)\")");

  std::map<std::string, std::set<std::string>> actual_edges;
  EdgeSites sites;

  for (const SourceFile& file : files) {
    const std::string from = ModuleOf(file.path);
    if (from.empty() || !graph.declared(from)) continue;
    ++result.files_scanned;
    // The include path is a string literal, which stripping blanks out —
    // detect the directive on the clean line (so commented-out includes
    // don't count) but read the path from the raw line.
    const std::vector<std::string> raw_lines = SplitLines(file.content);
    const std::vector<std::string> clean_lines =
        SplitLines(StripCommentsAndStrings(file.content));
    static const std::regex kDirective(R"(^\s*#\s*include\s*\")");
    for (std::size_t i = 0;
         i < raw_lines.size() && i < clean_lines.size(); ++i) {
      if (!std::regex_search(clean_lines[i], kDirective)) continue;
      std::smatch match;
      if (!std::regex_search(raw_lines[i], match, kInclude)) continue;
      const std::string target = match[1].str();
      const auto slash = target.find('/');
      if (slash == std::string::npos) continue;  // same-dir / non-module
      const std::string to = target.substr(0, slash);
      if (!graph.declared(to)) continue;  // gtest/..., bench/..., etc.
      if (to == from) continue;
      ++result.edges_checked;
      const int line = static_cast<int>(i + 1);
      IncludeEdge edge{from, to, file.path, line, target};
      if (actual_edges[from].insert(to).second) {
        sites[{from, to}] = edge;
      }
      const auto& allowed = graph.allowed.at(from);
      if (allowed.count(to) != 0) continue;
      const std::string key = "layering(" + from + "->" + to + ")";
      if (suppressions.Match(file.path, line, key)) {
        ++result.suppressed;
        continue;
      }
      std::ostringstream message;
      message << file.path << ":" << line << ": layering: module '" << from
              << "' may not include \"" << target << "\" (module '" << to
              << "'); declared deps:";
      if (allowed.empty()) {
        message << " (none)";
      } else {
        for (const std::string& dep : allowed) message << " " << dep;
      }
      Finding finding;
      finding.pass = "layering";
      finding.file = file.path;
      finding.line = line;
      finding.key = key;
      finding.message = message.str();
      result.findings.push_back(std::move(finding));
    }
  }

  FindCycles(actual_edges, sites, &result.findings);

  for (const Finding& finding : suppressions.malformed()) {
    result.findings.push_back(finding);
  }
  auto owns_key = [](const std::string& key) {
    return key.rfind("layering(", 0) == 0;
  };
  for (Finding& finding : suppressions.UnusedFindings("layering", owns_key)) {
    result.findings.push_back(std::move(finding));
  }
  SortAndDedupe(&result.findings);
  return result;
}

}  // namespace procsim::lint
