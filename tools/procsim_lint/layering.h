#ifndef PROCSIM_TOOLS_PROCSIM_LINT_LAYERING_H_
#define PROCSIM_TOOLS_PROCSIM_LINT_LAYERING_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint_core/core.h"

/// \file
/// The layering pass: parses `#include "mod/..."` edges across the src/
/// modules, checks every edge against the dependency DAG declared in
/// tools/procsim_lint/layers.txt, and reports undeclared (downward or
/// sideways) includes and dependency cycles with the full include chain.
/// Suppression key: `layering(from->to)`.

namespace procsim::lint {

/// The declared module DAG: `module: dep dep ...` per line, `#` comments.
/// Every module must be declared (a line with no deps declares a leaf).
struct LayerGraph {
  std::vector<std::string> order;  ///< declaration order (bottom first)
  std::map<std::string, std::set<std::string>> allowed;

  bool declared(const std::string& module) const {
    return allowed.count(module) != 0;
  }
};

/// Parses layers.txt.  Malformed lines and declared cycles (the declaration
/// itself must be a DAG) are reported as findings against `path`.
LayerGraph ParseLayerGraph(const std::string& text, const std::string& path,
                           std::vector<Finding>* findings);

struct LayeringResult {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t edges_checked = 0;
  std::size_t suppressed = 0;

  bool ok() const { return findings.empty(); }
};

/// Checks every include edge in `files` against `graph`.  Files outside
/// `src/<declared module>/` are ignored; includes of undeclared top-level
/// directories (e.g. <system> headers, "gtest/...") are ignored too.
LayeringResult AnalyzeLayering(const std::vector<SourceFile>& files,
                               const LayerGraph& graph);

}  // namespace procsim::lint

#endif  // PROCSIM_TOOLS_PROCSIM_LINT_LAYERING_H_
