#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "latch_lint/lint.h"
#include "lint_core/core.h"
#include "procsim_lint/annotations.h"
#include "procsim_lint/layering.h"
#include "procsim_lint/metrics_pass.h"

/// The procsim_lint driver: runs the latch-rank, layering, metrics, and
/// annotations passes (DESIGN.md §10) over DIR/src and reports findings as
/// text or JSON.  Exit 0 = clean, 1 = findings, 2 = usage/setup error.

namespace {

namespace fs = std::filesystem;
using procsim::lint::Finding;
using procsim::lint::SourceFile;

struct PassInfo {
  const char* name;
  const char* description;
};

constexpr PassInfo kPasses[] = {
    {"latch-rank",
     "latch acquisition order vs the LatchRank enum (src/util/latch.h)"},
    {"layering",
     "#include edges vs the module DAG (tools/procsim_lint/layers.txt)"},
    {"metrics",
     "metric names at instrumentation sites vs the catalog "
     "(src/obs/metrics.cc) and the <area>.<noun>.<verb> convention"},
    {"annotations",
     "GUARDED_BY coverage of mutable members in lock-holding classes"},
};

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool IsSourcePath(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

int Usage() {
  std::cerr
      << "usage: procsim_lint [--root DIR] [--pass NAME]... [--json]\n"
      << "                    [--quiet] [--list-passes]\n"
      << "\n"
      << "Multi-pass static analyzer over DIR/src (default: cwd).  All\n"
      << "passes run unless --pass selects a subset.  Findings are\n"
      << "suppressed by `// procsim-lint: allow(<key>) because <reason>`\n"
      << "comments on or directly above the offending line; a bare\n"
      << "allow(), a missing reason, or a suppression that matches no\n"
      << "finding is itself a finding.  --json emits the machine-readable\n"
      << "report CI diffs against an empty-findings golden.  Exit 0 =\n"
      << "clean, 1 = findings, 2 = usage/setup error.\n";
  return 2;
}

bool ValidPass(const std::string& name) {
  for (const PassInfo& pass : kPasses) {
    if (name == pass.name) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool quiet = false;
  bool json = false;
  std::set<std::string> selected;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (arg == "--pass") {
      if (i + 1 >= argc) return Usage();
      const std::string name = argv[++i];
      if (!ValidPass(name)) {
        std::cerr << "procsim-lint: unknown pass '" << name
                  << "' (see --list-passes)\n";
        return 2;
      }
      selected.insert(name);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-passes") {
      for (const PassInfo& pass : kPasses) {
        std::cout << pass.name << "\t" << pass.description << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      return Usage();
    }
  }
  auto enabled = [&](const std::string& name) {
    return selected.empty() || selected.count(name) != 0;
  };

  // --- Load the corpus ------------------------------------------------------
  const fs::path src_root = root / "src";
  std::error_code ec;
  if (!fs::is_directory(src_root, ec)) {
    std::cerr << "procsim-lint: no src/ under " << root.string()
              << " (pass --root to point at the repo root)\n";
    return 2;
  }
  std::vector<fs::path> paths;
  for (fs::recursive_directory_iterator it(src_root, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (it->is_regular_file() && IsSourcePath(it->path())) {
      paths.push_back(it->path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  for (const fs::path& path : paths) {
    std::string content;
    if (!ReadFile(path, &content)) {
      std::cerr << "procsim-lint: cannot read " << path.string() << "\n";
      return 2;
    }
    files.push_back({path.generic_string(), std::move(content)});
  }

  std::vector<Finding> findings;
  std::vector<std::string> summaries;

  // --- Pass 1: latch-rank ---------------------------------------------------
  if (enabled("latch-rank")) {
    const fs::path latch_header = root / "src" / "util" / "latch.h";
    std::string latch_source;
    if (!ReadFile(latch_header, &latch_source)) {
      std::cerr << "procsim-lint: cannot read " << latch_header.string()
                << "\n";
      return 2;
    }
    const procsim::lint::RankTable ranks =
        procsim::lint::ParseRankTable(latch_source);
    if (ranks.empty()) {
      std::cerr << "procsim-lint: no LatchRank enum found in "
                << latch_header.string() << "\n";
      return 2;
    }
    const procsim::lint::LintResult result =
        procsim::lint::AnalyzeSources(files, ranks);
    std::vector<Finding> pass = procsim::lint::ToFindings(result);
    findings.insert(findings.end(), pass.begin(), pass.end());
    std::ostringstream summary;
    summary << "latch-rank: " << result.mutexes_found << " mutexes, "
            << result.guard_sites_found << " guard sites, "
            << result.edges_checked << " edges, " << result.suppressed_edges
            << " suppressed, " << pass.size() << " findings";
    summaries.push_back(summary.str());
  }

  // --- Pass 2: layering -----------------------------------------------------
  if (enabled("layering")) {
    const fs::path layers_path = root / "tools" / "procsim_lint" /
                                 "layers.txt";
    std::string layers_source;
    if (!ReadFile(layers_path, &layers_source)) {
      std::cerr << "procsim-lint: cannot read " << layers_path.string()
                << "\n";
      return 2;
    }
    std::vector<Finding> graph_findings;
    const procsim::lint::LayerGraph graph = procsim::lint::ParseLayerGraph(
        layers_source, layers_path.generic_string(), &graph_findings);
    findings.insert(findings.end(), graph_findings.begin(),
                    graph_findings.end());
    const procsim::lint::LayeringResult result =
        procsim::lint::AnalyzeLayering(files, graph);
    findings.insert(findings.end(), result.findings.begin(),
                    result.findings.end());
    std::ostringstream summary;
    summary << "layering: " << result.files_scanned << " files, "
            << result.edges_checked << " include edges, "
            << result.suppressed << " suppressed, "
            << result.findings.size() + graph_findings.size()
            << " findings";
    summaries.push_back(summary.str());
  }

  // --- Pass 3: metrics ------------------------------------------------------
  if (enabled("metrics")) {
    const procsim::lint::MetricsResult result =
        procsim::lint::AnalyzeMetrics(files);
    findings.insert(findings.end(), result.findings.begin(),
                    result.findings.end());
    std::ostringstream summary;
    summary << "metrics: " << result.catalog_names << " cataloged, "
            << result.referenced_names << " referenced, "
            << result.suppressed << " suppressed, " << result.findings.size()
            << " findings";
    summaries.push_back(summary.str());
  }

  // --- Pass 4: annotations --------------------------------------------------
  if (enabled("annotations")) {
    const procsim::lint::AnnotationResult result =
        procsim::lint::AnalyzeAnnotations(files);
    findings.insert(findings.end(), result.findings.begin(),
                    result.findings.end());
    std::ostringstream summary;
    summary << "annotations: " << result.classes_with_locks
            << " lock-holding classes, " << result.members_checked
            << " members, " << result.suppressed << " suppressed, "
            << result.findings.size() << " findings";
    summaries.push_back(summary.str());
  }

  procsim::lint::SortAndDedupe(&findings);

  if (json) {
    std::cout << procsim::lint::RenderFindingsJson(findings);
  } else {
    std::cout << procsim::lint::RenderFindingsText(findings);
    if (!quiet || !findings.empty()) {
      for (const std::string& summary : summaries) {
        std::cout << "procsim-lint: " << summary << "\n";
      }
      std::cout << "procsim-lint: " << findings.size()
                << " total findings\n";
    }
  }
  return findings.empty() ? 0 : 1;
}
