#include "procsim_lint/metrics_pass.h"

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace procsim::lint {
namespace {

constexpr char kCatalogBegin[] = "procsim-lint: metric-catalog-begin";
constexpr char kCatalogEnd[] = "procsim-lint: metric-catalog-end";

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// `<area>.<noun>.<verb>`: exactly three lowercase dot-separated segments.
bool FollowsConvention(const std::string& name) {
  static const std::regex kConvention(
      R"(^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$)");
  return std::regex_match(name, kConvention);
}

struct NameSite {
  std::string file;
  int line = 0;
};

}  // namespace

MetricsResult AnalyzeMetrics(const std::vector<SourceFile>& files) {
  MetricsResult result;
  SuppressionSet suppressions(files);

  // --- Catalog extraction -------------------------------------------------
  std::map<std::string, NameSite> catalog;  // name -> declaration site
  const SourceFile* catalog_file = nullptr;
  int catalog_begin = 0;
  int catalog_end = 0;
  for (const SourceFile& file : files) {
    if (!EndsWith(file.path, "obs/metrics.cc")) continue;
    catalog_file = &file;
    const std::vector<std::string> lines = SplitLines(file.content);
    bool inside = false;
    static const std::regex kName(R"(\"([^\"]+)\")");
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const int line_no = static_cast<int>(i + 1);
      if (lines[i].find(kCatalogBegin) != std::string::npos) {
        inside = true;
        catalog_begin = line_no;
        continue;
      }
      if (lines[i].find(kCatalogEnd) != std::string::npos) {
        catalog_end = line_no;
        break;
      }
      if (!inside) continue;
      std::smatch match;
      std::string rest = lines[i];
      while (std::regex_search(rest, match, kName)) {
        catalog.emplace(match[1].str(), NameSite{file.path, line_no});
        rest = match.suffix();
      }
    }
    break;
  }
  result.catalog_names = catalog.size();
  if (catalog_file == nullptr || catalog.empty()) {
    Finding finding;
    finding.pass = "metrics";
    finding.file = catalog_file == nullptr ? "obs/metrics.cc"
                                           : catalog_file->path;
    finding.message =
        finding.file + ": metrics: no metric catalog found (want names " +
        "between `" + std::string(kCatalogBegin) + "` and `" +
        std::string(kCatalogEnd) + "` markers)";
    result.findings.push_back(std::move(finding));
    return result;
  }

  // --- Instrumentation-site references ------------------------------------
  // The registration string may sit on the line after the call, so match
  // across the whole file content and recover the line from the offset.
  std::map<std::string, std::vector<NameSite>> referenced;
  static const std::regex kSite(
      R"((?:RegisterCounter|RegisterHistogram|FindCounter)\s*\(\s*\"([^\"]+)\")");
  for (const SourceFile& file : files) {
    const bool is_catalog_file =
        catalog_file != nullptr && file.path == catalog_file->path;
    for (auto it = std::sregex_iterator(file.content.begin(),
                                        file.content.end(), kSite);
         it != std::sregex_iterator(); ++it) {
      const int line =
          1 + static_cast<int>(std::count(
                  file.content.begin(),
                  file.content.begin() + it->position(0), '\n'));
      if (is_catalog_file && line >= catalog_begin && line <= catalog_end) {
        continue;  // the catalog is a declaration, not a reference
      }
      referenced[(*it)[1].str()].push_back(NameSite{file.path, line});
    }
  }
  result.referenced_names = referenced.size();

  // --- Checks -------------------------------------------------------------
  auto suppressed = [&](const std::string& name, const NameSite& site) {
    return suppressions.Match(site.file, site.line, "metric(" + name + ")");
  };

  for (const auto& [name, sites] : referenced) {
    if (catalog.count(name) == 0) {
      bool all_suppressed = true;
      for (const NameSite& site : sites) {
        if (suppressed(name, site)) continue;
        all_suppressed = false;
        Finding finding;
        finding.pass = "metrics";
        finding.file = site.file;
        finding.line = site.line;
        finding.key = "metric(" + name + ")";
        finding.message = site.file + ":" + std::to_string(site.line) +
                          ": metrics: '" + name +
                          "' is referenced but not in the catalog " +
                          "(obs/metrics.cc) — typo, or add it";
        result.findings.push_back(std::move(finding));
      }
      if (all_suppressed) ++result.suppressed;
    }
    if (!FollowsConvention(name) && catalog.count(name) == 0) {
      // Convention reported at the reference only when uncataloged;
      // cataloged names are checked once at the catalog site below.
      for (const NameSite& site : sites) {
        if (suppressed(name, site)) continue;
        Finding finding;
        finding.pass = "metrics";
        finding.file = site.file;
        finding.line = site.line;
        finding.key = "metric(" + name + ")";
        finding.message = site.file + ":" + std::to_string(site.line) +
                          ": metrics: '" + name +
                          "' violates the naming convention " +
                          "`<area>.<noun>.<verb>` (three lowercase " +
                          "dot-separated segments)";
        result.findings.push_back(std::move(finding));
        break;
      }
    }
  }

  for (const auto& [name, site] : catalog) {
    if (referenced.count(name) == 0) {
      if (suppressed(name, site)) {
        ++result.suppressed;
      } else {
        Finding finding;
        finding.pass = "metrics";
        finding.file = site.file;
        finding.line = site.line;
        finding.key = "metric(" + name + ")";
        finding.message = site.file + ":" + std::to_string(site.line) +
                          ": metrics: '" + name +
                          "' is in the catalog but never referenced at an " +
                          "instrumentation site — dead metric, delete it";
        result.findings.push_back(std::move(finding));
      }
    }
    if (!FollowsConvention(name)) {
      if (suppressed(name, site)) {
        ++result.suppressed;
        continue;
      }
      Finding finding;
      finding.pass = "metrics";
      finding.file = site.file;
      finding.line = site.line;
      finding.key = "metric(" + name + ")";
      finding.message = site.file + ":" + std::to_string(site.line) +
                        ": metrics: '" + name +
                        "' violates the naming convention " +
                        "`<area>.<noun>.<verb>` (three lowercase " +
                        "dot-separated segments)";
      result.findings.push_back(std::move(finding));
    }
  }

  for (const Finding& finding : suppressions.malformed()) {
    result.findings.push_back(finding);
  }
  auto owns_key = [](const std::string& key) {
    return key.rfind("metric(", 0) == 0;
  };
  for (Finding& finding : suppressions.UnusedFindings("metrics", owns_key)) {
    result.findings.push_back(std::move(finding));
  }
  SortAndDedupe(&result.findings);
  return result;
}

}  // namespace procsim::lint
