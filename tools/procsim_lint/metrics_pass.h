#ifndef PROCSIM_TOOLS_PROCSIM_LINT_METRICS_PASS_H_
#define PROCSIM_TOOLS_PROCSIM_LINT_METRICS_PASS_H_

#include <string>
#include <vector>

#include "lint_core/core.h"

/// \file
/// The metrics-consistency pass: the catalog block in src/obs/metrics.cc
/// (between `procsim-lint: metric-catalog-begin/end` markers) declares the
/// tree's metric namespace; every name referenced at an instrumentation
/// site (RegisterCounter / RegisterHistogram / FindCounter) must be in the
/// catalog (else: typo), every catalog name must be referenced somewhere
/// (else: dead), and every name must follow the `<area>.<noun>.<verb>`
/// convention — three lowercase dot-separated segments.  Suppression key:
/// `metric(name)`.

namespace procsim::lint {

struct MetricsResult {
  std::vector<Finding> findings;
  std::size_t catalog_names = 0;
  std::size_t referenced_names = 0;
  std::size_t suppressed = 0;

  bool ok() const { return findings.empty(); }
};

/// Runs the pass over `files`.  The catalog is read from the file whose
/// path ends in `obs/metrics.cc`; a missing catalog is itself a finding.
MetricsResult AnalyzeMetrics(const std::vector<SourceFile>& files);

}  // namespace procsim::lint

#endif  // PROCSIM_TOOLS_PROCSIM_LINT_METRICS_PASS_H_
