// Delta-debugging reducer for differential-oracle failures.
//
// Generates the op stream a given audit_fuzz seed would execute, optionally
// plants a silent (un-notified) update to create a reproducible
// lost-invalidation bug, and shrinks the stream to a minimal failing
// reproduction printed as a paste-ready test case.
//
// Usage:
//   reduce --seed=7 --steps=120 [--model=2] [--plant-silent=IDX]
//          [--n=200] [--n1=6] [--n2=6] [--compare-sample=2]
//
// With --plant-silent=IDX the op at position IDX is replaced by a
// kSilentUpdate (same seed), so the stream genuinely fails and the reducer
// has something to shrink; without it, the tool reduces only if the seed
// already exposes a real bug (exit 0 with "stream passes" otherwise).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "audit/crosscheck.h"
#include "audit/reduce.h"
#include "sim/workload.h"

namespace {

uint64_t FlagValue(int argc, char** argv, const char* name,
                   uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using procsim::audit::CrossCheckOptions;
  using procsim::sim::WorkloadOp;

  CrossCheckOptions options;
  options.seed = FlagValue(argc, argv, "seed", 7);
  options.steps = static_cast<std::size_t>(FlagValue(argc, argv, "steps", 120));
  options.model = FlagValue(argc, argv, "model", 1) == 2
                      ? procsim::cost::ProcModel::kModel2
                      : procsim::cost::ProcModel::kModel1;
  options.params.N = static_cast<double>(FlagValue(argc, argv, "n", 200));
  options.params.N1 = static_cast<double>(FlagValue(argc, argv, "n1", 6));
  options.params.N2 = static_cast<double>(FlagValue(argc, argv, "n2", 6));
  // Update batches wide enough, and selection intervals long enough, that
  // a planted silent update almost surely breaks some procedure.
  options.params.l = static_cast<double>(FlagValue(argc, argv, "l", 20));
  options.params.f_R2 = 0.1;
  options.params.f_R3 = 0.1;
  options.params.f = 0.08;
  options.params.f2 = 0.3;
  options.compare_sample =
      static_cast<std::size_t>(FlagValue(argc, argv, "compare-sample", 0));

  std::vector<WorkloadOp> ops = procsim::audit::GenerateOpStream(options);
  if (HasFlag(argc, argv, "plant-silent")) {
    const std::size_t index = static_cast<std::size_t>(
        FlagValue(argc, argv, "plant-silent", 0));
    if (index >= ops.size()) {
      std::fprintf(stderr, "plant-silent index %zu out of range (%zu ops)\n",
                   index, ops.size());
      return 2;
    }
    ops[index].kind = WorkloadOp::Kind::kSilentUpdate;
    if (ops[index].value == 0) ops[index].value = options.seed + 1;
  }

  std::printf("reducing %zu ops (seed %llu)...\n", ops.size(),
              static_cast<unsigned long long>(options.seed));
  procsim::Result<procsim::audit::ReduceOutcome> reduced =
      procsim::audit::ReduceOpStream(options, ops);
  if (!reduced.ok()) {
    std::printf("%s\n", reduced.status().ToString().c_str());
    return reduced.status().code() == procsim::StatusCode::kInvalidArgument
               ? 0
               : 1;
  }
  const procsim::audit::ReduceOutcome& outcome = reduced.ValueOrDie();
  std::printf("minimal reproduction: %zu op%s after %zu probes\n",
              outcome.minimal.size(), outcome.minimal.size() == 1 ? "" : "s",
              outcome.probes);
  std::printf("failure: %s\n\n%s", outcome.failure.c_str(),
              outcome.test_case.c_str());
  return 0;
}
